package pdns

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func day(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestEntryActiveDays(t *testing.T) {
	e := Entry{Domain: "a.com", FirstSeen: day(2017, 1, 1), LastSeen: day(2017, 4, 29)}
	if got := e.ActiveDays(); got != 118 {
		t.Errorf("ActiveDays = %v, want 118", got)
	}
	if (Entry{Domain: "b.com"}).ActiveDays() != 0 {
		t.Error("zero times should be 0 active days")
	}
}

func TestEntryValidate(t *testing.T) {
	good := Entry{Domain: "a.com", FirstSeen: day(2017, 1, 1), LastSeen: day(2017, 2, 1), Queries: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid entry rejected: %v", err)
	}
	bad := []Entry{
		{},
		{Domain: "a.com", Queries: -1},
		{Domain: "a.com", FirstSeen: day(2017, 2, 1), LastSeen: day(2017, 1, 1)},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
	}
}

func TestMergeWidensAndSums(t *testing.T) {
	s := NewStore()
	s.Merge(Entry{Domain: "X.com", FirstSeen: day(2016, 5, 1), LastSeen: day(2016, 6, 1), Queries: 10, IPs: []string{"192.0.2.1"}})
	s.Merge(Entry{Domain: "x.COM", FirstSeen: day(2016, 1, 1), LastSeen: day(2016, 5, 15), Queries: 7, IPs: []string{"192.0.2.2", "192.0.2.1"}})
	e, ok := s.Get("x.com")
	if !ok {
		t.Fatal("merged entry missing")
	}
	if !e.FirstSeen.Equal(day(2016, 1, 1)) || !e.LastSeen.Equal(day(2016, 6, 1)) {
		t.Errorf("window = %v..%v", e.FirstSeen, e.LastSeen)
	}
	if e.Queries != 17 {
		t.Errorf("Queries = %d", e.Queries)
	}
	if !reflect.DeepEqual(e.IPs, []string{"192.0.2.1", "192.0.2.2"}) {
		t.Errorf("IPs = %v", e.IPs)
	}
}

func TestMergeCommutative(t *testing.T) {
	entries := []Entry{
		{Domain: "a.com", FirstSeen: day(2015, 1, 1), LastSeen: day(2015, 3, 1), Queries: 3, IPs: []string{"10.0.0.1"}},
		{Domain: "a.com", FirstSeen: day(2014, 6, 1), LastSeen: day(2016, 1, 1), Queries: 9, IPs: []string{"10.0.0.2"}},
		{Domain: "a.com", FirstSeen: day(2015, 2, 1), LastSeen: day(2015, 2, 2), Queries: 1, IPs: []string{"10.0.0.1"}},
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	var want Entry
	for i, p := range perms {
		s := NewStore()
		for _, idx := range p {
			s.Merge(entries[idx])
		}
		got, _ := s.Get("a.com")
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order %v gave %+v, want %+v", p, got, want)
		}
	}
}

func TestMergeQuickInvariants(t *testing.T) {
	f := func(q1, q2 uint16, d1, d2 uint8) bool {
		s := NewStore()
		s.Merge(Entry{Domain: "q.com", FirstSeen: day(2015, 1, 1+int(d1%20)), LastSeen: day(2016, 1, 1+int(d1%20)), Queries: int64(q1)})
		s.Merge(Entry{Domain: "q.com", FirstSeen: day(2015, 1, 1+int(d2%20)), LastSeen: day(2016, 1, 1+int(d2%20)), Queries: int64(q2)})
		e, ok := s.Get("q.com")
		return ok && e.Queries == int64(q1)+int64(q2) && !e.LastSeen.Before(e.FirstSeen) && e.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveAndQuerySeries(t *testing.T) {
	s := NewStore()
	s.Merge(Entry{Domain: "a.com", FirstSeen: day(2017, 1, 1), LastSeen: day(2017, 1, 11), Queries: 100})
	s.Merge(Entry{Domain: "b.com", FirstSeen: day(2017, 1, 1), LastSeen: day(2017, 1, 2), Queries: 5})
	domains := []string{"a.com", "b.com", "unseen.com"}
	ad := s.ActiveDaysOf(domains)
	if !reflect.DeepEqual(ad, []float64{10, 1}) {
		t.Errorf("ActiveDaysOf = %v", ad)
	}
	qs := s.QueriesOf(domains)
	if !reflect.DeepEqual(qs, []float64{100, 5}) {
		t.Errorf("QueriesOf = %v", qs)
	}
}

func TestSlash24(t *testing.T) {
	cases := []struct{ in, want string }{
		{"192.0.2.55", "192.0.2.0/24"},
		{"10.1.2.3", "10.1.2.0/24"},
		{"garbage", "garbage"},
	}
	for _, tc := range cases {
		if got := Slash24(tc.in); got != tc.want {
			t.Errorf("Slash24(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSegmentsByDomains(t *testing.T) {
	s := NewStore()
	// Three domains in 192.0.2.0/24, one in 10.0.0.0/24.
	s.Merge(Entry{Domain: "a.com", Queries: 1, IPs: []string{"192.0.2.1"}})
	s.Merge(Entry{Domain: "b.com", Queries: 1, IPs: []string{"192.0.2.2"}})
	s.Merge(Entry{Domain: "c.com", Queries: 1, IPs: []string{"192.0.2.1", "10.0.0.5"}})
	s.Merge(Entry{Domain: "d.com", Queries: 1, IPs: []string{"10.0.0.5"}})
	segs := s.SegmentsByDomains()
	if len(segs) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	if segs[0].Segment != "192.0.2.0/24" || segs[0].Domains != 3 || segs[0].IPs != 2 {
		t.Errorf("top segment = %+v", segs[0])
	}
	if segs[1].Segment != "10.0.0.0/24" || segs[1].Domains != 2 || segs[1].IPs != 1 {
		t.Errorf("second segment = %+v", segs[1])
	}
}

func TestLimitedClientQuota(t *testing.T) {
	s := NewStore()
	s.Merge(Entry{Domain: "hit.com", Queries: 42, FirstSeen: day(2017, 1, 1), LastSeen: day(2017, 2, 1)})
	now := day(2017, 9, 1)
	clock := func() time.Time { return now }
	c := NewLimitedClient(s, 3, clock)

	if c.Remaining() != 3 {
		t.Fatalf("Remaining = %d", c.Remaining())
	}
	if _, ok, err := c.Lookup("hit.com"); err != nil || !ok {
		t.Fatalf("first lookup: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Lookup("miss.com"); err != nil || ok {
		t.Fatalf("miss lookup: ok=%v err=%v", ok, err)
	}
	if _, _, err := c.Lookup("hit.com"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup("hit.com"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want quota exceeded", err)
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", c.Remaining())
	}
	// Next day the quota resets.
	now = day(2017, 9, 2)
	if c.Remaining() != 3 {
		t.Errorf("Remaining after reset = %d", c.Remaining())
	}
	if _, _, err := c.Lookup("hit.com"); err != nil {
		t.Fatalf("lookup after reset: %v", err)
	}
	if c.TotalQueries() != 4 {
		t.Errorf("TotalQueries = %d, want 4", c.TotalQueries())
	}
}

func TestDomainsSorted(t *testing.T) {
	s := NewStore()
	for _, d := range []string{"z.com", "a.com", "m.com"} {
		s.Merge(Entry{Domain: d, Queries: 1})
	}
	ds := s.Domains()
	if !reflect.DeepEqual(ds, []string{"a.com", "m.com", "z.com"}) {
		t.Errorf("Domains = %v", ds)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func BenchmarkMerge(b *testing.B) {
	s := NewStore()
	e := Entry{Domain: "bench.com", FirstSeen: day(2016, 1, 1), LastSeen: day(2017, 1, 1), Queries: 1, IPs: []string{"192.0.2.9"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Merge(e)
	}
}

func BenchmarkSegmentsByDomains(b *testing.B) {
	s := NewStore()
	for i := 0; i < 2000; i++ {
		ip := "10." + string(rune('0'+i%10)) + ".0." + string(rune('1'+i%9))
		s.Merge(Entry{Domain: "d" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + ".com", Queries: 1, IPs: []string{ip}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SegmentsByDomains()
	}
}
