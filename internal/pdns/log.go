package pdns

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Query-log ingestion: the 360 DNS Pai project "has been collecting DNS
// logs from a large array of DNS resolvers since 2014, which now handles
// 240 billion DNS requests per day" (§III), exposing them as per-domain
// aggregates. This file implements that pipeline: a resolver log-line
// format and a streaming aggregator that folds raw lines into Store
// entries.

// LogLine is one resolver observation: a timestamped query for a domain
// and the address returned.
type LogLine struct {
	// Time is the query timestamp (UTC).
	Time time.Time
	// Domain is the queried name (ACE form).
	Domain string
	// ResponseIP is the A answer observed, empty for non-answers.
	ResponseIP string
}

// logTimeLayout is the on-disk timestamp format.
const logTimeLayout = "2006-01-02T15:04:05Z"

// ErrBadLogLine reports an unparseable log line.
var ErrBadLogLine = errors.New("pdns: malformed log line")

// String renders the line in the wire format: "<ts> <domain> [ip]".
func (l LogLine) String() string {
	if l.ResponseIP == "" {
		return l.Time.UTC().Format(logTimeLayout) + " " + l.Domain
	}
	return l.Time.UTC().Format(logTimeLayout) + " " + l.Domain + " " + l.ResponseIP
}

// ParseLogLine parses one line of resolver log.
func ParseLogLine(line string) (LogLine, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return LogLine{}, fmt.Errorf("%w: %q", ErrBadLogLine, line)
	}
	ts, err := time.Parse(logTimeLayout, fields[0])
	if err != nil {
		return LogLine{}, fmt.Errorf("%w: bad timestamp in %q", ErrBadLogLine, line)
	}
	out := LogLine{Time: ts, Domain: strings.ToLower(fields[1])}
	if len(fields) == 3 {
		out.ResponseIP = fields[2]
	}
	return out, nil
}

// Aggregate folds a stream of resolver log lines into the store,
// returning the number of lines ingested. Blank lines and '#' comments
// are skipped; a malformed line aborts with its line number.
func (s *Store) Aggregate(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		line, err := ParseLogLine(text)
		if err != nil {
			return n, fmt.Errorf("line %d: %w", lineNo, err)
		}
		entry := Entry{
			Domain:    line.Domain,
			FirstSeen: line.Time,
			LastSeen:  line.Time,
			Queries:   1,
		}
		if line.ResponseIP != "" {
			entry.IPs = []string{line.ResponseIP}
		}
		s.Merge(entry)
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("pdns: read log: %w", err)
	}
	return n, nil
}

// WriteLog renders the lines to w, one per line.
func WriteLog(w io.Writer, lines []LogLine) error {
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := bw.WriteString(l.String() + "\n"); err != nil {
			return fmt.Errorf("pdns: write log: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("pdns: flush log: %w", err)
	}
	return nil
}
