// Package profiling wires the standard -cpuprofile/-memprofile flags the
// CLI tools expose, so report and scan runs can be profiled with pprof
// without any per-command boilerplate.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for
// a heap profile to be written to memPath (when non-empty) at stop time.
// The returned stop function must be called exactly once, after the
// workload completes; it flushes both profiles and reports the first
// error. Empty paths make Start and its stop function no-ops for that
// profile kind.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("memprofile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		}
		return first
	}, nil
}
