package uniscript

import (
	"testing"
	"testing/quick"
	"unicode"
)

func TestOfKnownCodePoints(t *testing.T) {
	cases := []struct {
		r    rune
		want Script
	}{
		{'a', Latin},
		{'Z', Latin},
		{'0', Common},
		{'-', Common},
		{'.', Common},
		{'é', Latin},
		{'ß', Latin},
		{'а', Cyrillic}, // U+0430 — the apple.com attack character
		{'о', Cyrillic}, // U+043E
		{'ѕ', Cyrillic}, // U+0455 — the soso.com attack character
		{'α', Greek},
		{'ω', Greek},
		{'中', Han},
		{'国', Han},
		{'波', Han},
		{'の', Hiragana},
		{'ア', Katakana},
		{'한', Hangul},
		{'ไ', Thai},
		{'م', Arabic},
		{'ש', Hebrew},
		{'д', Cyrillic},
		{'ạ', Latin},     // U+1EA1 Vietnamese
		{'́', Inherited}, // combining acute
		{'ひ', Hiragana},
		{'ㄅ', Bopomofo},
		{'ᠮ', Mongolian},
	}
	for _, tc := range cases {
		if got := Of(tc.r); got != tc.want {
			t.Errorf("Of(%q U+%04X) = %v, want %v", tc.r, tc.r, got, tc.want)
		}
	}
}

func TestOfASCIIPunctuationIsCommon(t *testing.T) {
	for _, r := range []rune{' ', '!', '/', ':', '@', '~', '_'} {
		if got := Of(r); got != Common {
			t.Errorf("Of(%q) = %v, want Common", r, got)
		}
	}
}

func TestOfUnknown(t *testing.T) {
	// Deseret block is deliberately not in the table.
	if got := Of(0x10400); got != Unknown {
		t.Errorf("Of(U+10400) = %v, want Unknown", got)
	}
}

func TestOfAgreesWithStdlibOnCore(t *testing.T) {
	// Spot-check our table against the stdlib unicode ranges for the
	// scripts we share, over the BMP.
	checks := []struct {
		table *unicode.RangeTable
		want  Script
	}{
		{unicode.Hiragana, Hiragana},
		{unicode.Katakana, Katakana},
		{unicode.Thai, Thai},
		{unicode.Hangul, Hangul},
		{unicode.Greek, Greek},
		{unicode.Cyrillic, Cyrillic},
	}
	for r := rune(0x80); r <= 0xFFFF; r++ {
		got := Of(r)
		for _, c := range checks {
			if unicode.Is(c.table, r) && got != c.want && got != Unknown && got != Inherited {
				t.Fatalf("U+%04X: Of=%v but stdlib says %v", r, got, c.want)
			}
		}
	}
}

func TestSetOperations(t *testing.T) {
	var s Set
	if s.Len() != 0 {
		t.Fatal("empty set has non-zero length")
	}
	s.Add(Latin)
	s.Add(Cyrillic)
	s.Add(Latin) // duplicate
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Has(Latin) || !s.Has(Cyrillic) || s.Has(Han) {
		t.Fatal("membership wrong")
	}
	scripts := s.Scripts()
	if len(scripts) != 2 || scripts[0] != Latin || scripts[1] != Cyrillic {
		t.Fatalf("Scripts() = %v", scripts)
	}
}

func TestAnalyzeASCII(t *testing.T) {
	a := Analyze("example-123.com")
	if !a.ASCIIOnly {
		t.Error("ASCIIOnly should be true")
	}
	if !a.SingleScript() {
		t.Error("pure ASCII should be single-script")
	}
	if a.Dominant() != Latin {
		t.Errorf("Dominant = %v, want Latin", a.Dominant())
	}
}

func TestAnalyzeHomographMixed(t *testing.T) {
	// "аpple": Cyrillic а + Latin pple — the canonical 2017 attack.
	a := Analyze("аpple")
	if !a.Mixed() {
		t.Error("Cyrillic+Latin should be mixed")
	}
	if a.SingleScript() {
		t.Error("mixed label must not be single-script")
	}
}

func TestAnalyzeWholeScriptConfusable(t *testing.T) {
	// "ѕоѕо" — all Cyrillic, mimicking soso. Passes the single-script
	// policy, which is exactly the Firefox bypass in Table XI.
	a := Analyze("ѕоѕо")
	if !a.SingleScript() {
		t.Error("all-Cyrillic label should be single-script")
	}
	if a.Dominant() != Cyrillic {
		t.Errorf("Dominant = %v", a.Dominant())
	}
}

func TestAnalyzeCombiningMarks(t *testing.T) {
	a := Analyze("façebook") // c + combining cedilla
	if !a.HasInherited {
		t.Error("should detect combining mark")
	}
	if !a.SingleScript() {
		t.Error("Latin + Inherited should stay single-script")
	}
}

func TestAnalyzeChineseKeywordPlusBrand(t *testing.T) {
	// Type-1 semantic attack shape: "apple邮箱".
	a := Analyze("apple邮箱")
	if !a.Mixed() {
		t.Error("Latin+Han should be mixed")
	}
	if a.ASCIIOnly {
		t.Error("not ASCII-only")
	}
}

func TestAnalyzeDigitsOnly(t *testing.T) {
	a := Analyze("58")
	if a.Concrete.Len() != 0 || !a.HasCommon {
		t.Error("digits should be Common only")
	}
	if !a.SingleScript() {
		t.Error("Common-only label counts as single script")
	}
	if a.Dominant() != Unknown {
		t.Errorf("Dominant of script-free label = %v, want Unknown", a.Dominant())
	}
}

func TestAnalyzeUnknownBreaksSingleScript(t *testing.T) {
	a := Analyze("ab\U00010400") // Deseret
	if !a.HasUnknown {
		t.Error("should flag Unknown")
	}
	if a.SingleScript() {
		t.Error("Unknown code points must break single-script status")
	}
}

func TestEastAsian(t *testing.T) {
	for _, sc := range []Script{Han, Hiragana, Katakana, Hangul, Thai, Bopomofo, Mongolian} {
		if !EastAsian(sc) {
			t.Errorf("%v should be east-Asian", sc)
		}
	}
	for _, sc := range []Script{Latin, Cyrillic, Greek, Arabic, Hebrew, Common, Unknown} {
		if EastAsian(sc) {
			t.Errorf("%v should not be east-Asian", sc)
		}
	}
}

func TestScriptString(t *testing.T) {
	if Latin.String() != "Latin" || Han.String() != "Han" {
		t.Error("String() wrong")
	}
	if Script(99).String() != "Unknown" {
		t.Error("out-of-range script should stringify as Unknown")
	}
}

func TestOfTotalProperty(t *testing.T) {
	// Of must be total and deterministic over arbitrary runes.
	if err := quick.Check(func(v uint32) bool {
		r := rune(v % 0x110000)
		return Of(r) == Of(r)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangesSorted(t *testing.T) {
	for i := 1; i < len(ranges); i++ {
		if ranges[i].lo <= ranges[i-1].hi {
			t.Fatalf("ranges overlap or unsorted at %d", i)
		}
	}
}

func BenchmarkOf(b *testing.B) {
	runes := []rune("аррӏе中国example한국어ไทย")
	for i := 0; i < b.N; i++ {
		_ = Of(runes[i%len(runes)])
	}
}

func BenchmarkAnalyze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Analyze("fаcebook-секретныйdomain中文")
	}
}
