// Package uniscript classifies Unicode code points into scripts and
// provides the script-mixing analysis used by the IDN display policies
// (package browser), the language identifier (package langid) and the
// homograph detector (package core).
//
// The classification is a self-contained range table covering every script
// that occurs in the paper's corpus: the east-Asian scripts that dominate
// IDN registration (Han, Hiragana, Katakana, Hangul, Thai), the scripts used
// in homograph attacks (Latin, Cyrillic, Greek), and the remaining top-15
// languages of Table II (Arabic, Hebrew, Devanagari for completeness).
// Code points shared across scripts (digits, hyphen, combining marks,
// punctuation) are classified as Common or Inherited per Unicode TR24.
package uniscript

import "sort"

// Script identifies a Unicode script.
type Script int

// Scripts recognized by this package. Unknown covers everything not in the
// range table.
const (
	Unknown   Script = iota
	Common           // shared: digits, hyphen, dots, spacing punctuation
	Inherited        // combining marks that inherit the base script
	Latin
	Cyrillic
	Greek
	Armenian
	Hebrew
	Arabic
	Devanagari
	Thai
	Han
	Hiragana
	Katakana
	Hangul
	Bopomofo
	Mongolian
	Cherokee
	Georgian
)

var scriptNames = map[Script]string{
	Unknown:    "Unknown",
	Common:     "Common",
	Inherited:  "Inherited",
	Latin:      "Latin",
	Cyrillic:   "Cyrillic",
	Greek:      "Greek",
	Armenian:   "Armenian",
	Hebrew:     "Hebrew",
	Arabic:     "Arabic",
	Devanagari: "Devanagari",
	Thai:       "Thai",
	Han:        "Han",
	Hiragana:   "Hiragana",
	Katakana:   "Katakana",
	Hangul:     "Hangul",
	Bopomofo:   "Bopomofo",
	Mongolian:  "Mongolian",
	Cherokee:   "Cherokee",
	Georgian:   "Georgian",
}

// String returns the Unicode script name.
func (s Script) String() string {
	if n, ok := scriptNames[s]; ok {
		return n
	}
	return "Unknown"
}

// scriptRange is a half-open-inclusive code point range [Lo, Hi] belonging
// to one script.
type scriptRange struct {
	lo, hi rune
	script Script
}

// ranges is sorted by lo (enforced by sortRanges) and non-overlapping; Of
// does a binary search over it. The table is a curated subset of Unicode 10
// Scripts.txt (the Unicode version contemporary with the paper's 2017
// snapshots) covering the Basic Multilingual Plane ranges relevant to
// domain names, plus the CJK supplementary ideographs.
var ranges = sortRanges([]scriptRange{
	{0x0030, 0x0039, Common}, // digits
	{0x002D, 0x002E, Common}, // hyphen, full stop
	{0x0041, 0x005A, Latin},
	{0x005F, 0x005F, Common}, // low line (seen in hostnames)
	{0x0061, 0x007A, Latin},
	{0x00AA, 0x00AA, Latin},
	{0x00B5, 0x00B5, Greek}, // micro sign folds to mu
	{0x00BA, 0x00BA, Latin},
	{0x00C0, 0x00D6, Latin},
	{0x00D8, 0x00F6, Latin},
	{0x00F8, 0x02AF, Latin}, // Latin-1 Supp through IPA extensions
	{0x02B0, 0x02FF, Common},
	{0x0300, 0x036F, Inherited}, // combining diacritical marks
	{0x0370, 0x0373, Greek},
	{0x0375, 0x0377, Greek},
	{0x037A, 0x037D, Greek},
	{0x037F, 0x037F, Greek},
	{0x0384, 0x0384, Greek},
	{0x0386, 0x0386, Greek},
	{0x0388, 0x03E1, Greek},
	{0x03F0, 0x03FF, Greek},
	{0x0400, 0x0484, Cyrillic},
	{0x0487, 0x052F, Cyrillic},
	{0x0531, 0x058F, Armenian},
	{0x0591, 0x05F4, Hebrew},
	{0x0600, 0x06FF, Arabic},
	{0x0750, 0x077F, Arabic}, // Arabic Supplement
	{0x08A0, 0x08FF, Arabic}, // Arabic Extended-A
	{0x0900, 0x097F, Devanagari},
	{0x0E01, 0x0E3A, Thai},
	{0x0E40, 0x0E5B, Thai},
	{0x10A0, 0x10FF, Georgian},
	{0x13A0, 0x13FD, Cherokee},
	{0x1100, 0x11FF, Hangul}, // Hangul Jamo
	{0x1780, 0x17FF, Unknown},
	{0x1800, 0x18AF, Mongolian},
	{0x1C80, 0x1C88, Cyrillic}, // Cyrillic Extended-C
	{0x1D00, 0x1D25, Latin},
	{0x1D2C, 0x1D5C, Latin},
	{0x1E00, 0x1EFF, Latin}, // Latin Extended Additional (Vietnamese)
	{0x1F00, 0x1FFE, Greek}, // Greek Extended
	{0x2C60, 0x2C7F, Latin}, // Latin Extended-C
	{0x2D00, 0x2D2F, Georgian},
	{0x2DE0, 0x2DFF, Cyrillic},
	{0x2E80, 0x2FDF, Han}, // CJK radicals, Kangxi radicals
	{0x3005, 0x3007, Han},
	{0x3041, 0x3096, Hiragana},
	{0x3099, 0x309A, Inherited}, // kana voicing marks
	{0x309D, 0x309F, Hiragana},
	{0x30A1, 0x30FA, Katakana},
	{0x30FD, 0x30FF, Katakana},
	{0x3105, 0x312F, Bopomofo},
	{0x3131, 0x318E, Hangul}, // Hangul compatibility Jamo
	{0x31A0, 0x31BF, Bopomofo},
	{0x31F0, 0x31FF, Katakana},
	{0x3400, 0x4DBF, Han}, // CJK Extension A
	{0x4E00, 0x9FFF, Han}, // CJK Unified Ideographs
	{0xA640, 0xA69F, Cyrillic},
	{0xA720, 0xA7FF, Latin}, // Latin Extended-D
	{0xAB30, 0xAB64, Latin},
	{0xAB65, 0xAB65, Greek}, // small capital omega in Latin Ext-E block
	{0xAB70, 0xABBF, Cherokee},
	{0xAC00, 0xD7A3, Hangul}, // Hangul syllables
	{0xF900, 0xFAD9, Han},    // CJK compatibility ideographs
	{0xFB1D, 0xFB4F, Hebrew},
	{0xFB50, 0xFDFF, Arabic}, // Arabic presentation forms A
	{0xFE70, 0xFEFC, Arabic}, // Arabic presentation forms B
	{0xFF10, 0xFF19, Common}, // fullwidth digits
	{0xFF21, 0xFF3A, Latin},  // fullwidth Latin capitals
	{0xFF41, 0xFF5A, Latin},  // fullwidth Latin smalls
	{0xFF66, 0xFF9D, Katakana},
	{0xFFA0, 0xFFDC, Hangul},
	{0x20000, 0x2A6DF, Han}, // CJK Extension B
	{0x2A700, 0x2EBEF, Han}, // CJK Extensions C-F
})

// sortRanges orders the table by lo and verifies it is non-overlapping.
func sortRanges(rs []scriptRange) []scriptRange {
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	for i := 1; i < len(rs); i++ {
		if rs[i].lo <= rs[i-1].hi {
			panic("uniscript: overlapping script ranges")
		}
	}
	return rs
}

// Of returns the script of code point r. Code points absent from the table
// but below U+0080 are Common (ASCII punctuation and controls); all other
// absent code points are Unknown.
func Of(r rune) Script {
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].hi >= r })
	if i < len(ranges) && ranges[i].lo <= r && r <= ranges[i].hi {
		return ranges[i].script
	}
	if r < 0x80 {
		return Common
	}
	return Unknown
}

// Set is a bit set of scripts found in a string.
type Set uint32

// Add inserts a script into the set.
func (s *Set) Add(sc Script) { *s |= 1 << uint(sc) }

// Has reports whether the set contains sc.
func (s Set) Has(sc Script) bool { return s&(1<<uint(sc)) != 0 }

// Len returns the number of scripts in the set.
func (s Set) Len() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Scripts returns the members of the set in ascending Script order.
func (s Set) Scripts() []Script {
	var out []Script
	for sc := Unknown; sc <= Georgian; sc++ {
		if s.Has(sc) {
			out = append(out, sc)
		}
	}
	return out
}

// Analysis summarizes the script composition of a label. It is the input to
// the browser display policies: Mozilla's algorithm displays Unicode only if
// the label is "single script" (ignoring Common/Inherited), and Chrome adds
// further restrictions for confusable-heavy scripts.
type Analysis struct {
	// Concrete holds the non-Common, non-Inherited scripts present.
	Concrete Set
	// HasCommon reports whether Common code points are present.
	HasCommon bool
	// HasInherited reports whether combining marks are present.
	HasInherited bool
	// HasUnknown reports whether unclassified code points are present.
	HasUnknown bool
	// ASCIIOnly reports whether every code point is below U+0080.
	ASCIIOnly bool
}

// Analyze computes the script composition of label.
func Analyze(label string) Analysis {
	a := Analysis{ASCIIOnly: true}
	for _, r := range label {
		if r >= 0x80 {
			a.ASCIIOnly = false
		}
		switch sc := Of(r); sc {
		case Common:
			a.HasCommon = true
		case Inherited:
			a.HasInherited = true
		case Unknown:
			a.HasUnknown = true
		default:
			a.Concrete.Add(sc)
		}
	}
	return a
}

// SingleScript reports whether the label's concrete scripts number at most
// one (the Mozilla "IDN display algorithm" criterion). Common and Inherited
// code points do not break single-script status, but Unknown ones do.
func (a Analysis) SingleScript() bool {
	return a.Concrete.Len() <= 1 && !a.HasUnknown
}

// Mixed reports whether at least two concrete scripts are present.
func (a Analysis) Mixed() bool { return a.Concrete.Len() >= 2 }

// Dominant returns the single concrete script of the analysis, or Unknown
// when there are zero or multiple concrete scripts.
func (a Analysis) Dominant() Script {
	scripts := a.Concrete.Scripts()
	if len(scripts) == 1 {
		return scripts[0]
	}
	return Unknown
}

// EastAsian reports whether the script is one of the east-Asian scripts the
// paper highlights as dominating IDN registration (Finding 1).
func EastAsian(sc Script) bool {
	switch sc {
	case Han, Hiragana, Katakana, Hangul, Bopomofo, Thai, Mongolian:
		return true
	}
	return false
}
