package api

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"idnlab/internal/core"
	"idnlab/internal/feat"
)

// FuzzCodecRoundTrip drives the byte-identity contract from fuzzer-
// chosen field values: every DetectResponse/BatchResponse built from
// the inputs must (1) encode via the append codec to exactly
// json.Marshal's bytes, (2) decode those bytes via the pooled decoder
// and via strict json.Unmarshal to the same value, and (3) survive a
// full encode→decode→encode round trip losslessly. Non-finite floats
// are skipped: json.Marshal itself refuses them (the codec's
// ErrNonFinite path is pinned by TestWriteHelpersMatchWriteJSON).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("xn--pple-43d.com", "аpple.com", 0.975, 13.5, "high", true, int64(3), "")
	f.Add("", "", 0.0, 0.0, "", false, int64(0), "boom")
	f.Add("a\"b\\c<d>&\x01", "line\u2028sep \xff", 1e-7, -1e21, "none", true, int64(-1), "\x00")
	f.Add("😀", "\xed\xa0\x80", math.SmallestNonzeroFloat64, 1e20, "low", false, int64(64), "é")
	f.Fuzz(func(t *testing.T, domain, unicode string, ssim, impact float64, susp string, flagged bool, count int64, errStr string) {
		if !finite(ssim) || !finite(impact) {
			t.Skip()
		}
		resp := DetectResponse{
			Verdict: core.Verdict{
				Domain:  domain,
				Unicode: unicode,
				IDN:     flagged,
				Homograph: &core.HomographMatch{
					Domain: domain, Unicode: unicode, Brand: domain, SSIM: ssim,
				},
				Semantic: &core.SemanticMatch{
					Domain: domain, Unicode: unicode, Brand: unicode, Keyword: errStr,
				},
				Statistical: &core.StatMatch{
					Domain: domain, Unicode: unicode, Score: impact,
					Top: []feat.Contribution{{Feature: susp, Value: ssim, Impact: impact}},
				},
				Confidence: &core.EnsembleConfidence{Homograph: ssim, Semantic: impact, Statistical: ssim},
				Suspicion:  susp,
			},
			Flagged: flagged,
			Cached:  !flagged,
			Input:   unicode,
			Error:   errStr,
		}
		if count%3 == 0 { // exercise the sparse shape too
			resp = DetectResponse{Verdict: core.Verdict{Domain: domain}, Input: unicode, Error: errStr}
		}
		batch := BatchResponse{Count: int(count % 1000), Flagged: int(count % 7), Results: []DetectResponse{resp}}
		if count%5 == 0 {
			batch.Results = nil
		}

		checkDetect(t, &resp)
		checkBatch(t, &batch)
	})
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func checkDetect(t *testing.T, resp *DetectResponse) {
	t.Helper()
	want, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendDetectResponse(nil, resp)
	if err != nil {
		t.Fatalf("codec errored where stdlib succeeded: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encode diverged:\n got %s\nwant %s", got, want)
	}
	// Decode with both decoders; compare via canonical re-encoding
	// (omitempty makes nil vs empty indistinguishable on the wire, which
	// is the equivalence that matters).
	var std DetectResponse
	if err := json.Unmarshal(got, &std); err != nil {
		t.Fatalf("stdlib rejects codec output %s: %v", got, err)
	}
	mine, err := DecodeDetectResponseBytes(got)
	if err != nil {
		t.Fatalf("decoder rejects codec output %s: %v", got, err)
	}
	stdBytes, _ := json.Marshal(std)
	mineBytes, _ := json.Marshal(mine)
	if !bytes.Equal(stdBytes, mineBytes) {
		t.Fatalf("decoders disagree on %s:\n stdlib %s\n mine   %s", got, stdBytes, mineBytes)
	}
	// Full round trip: re-encoding the decoded value must match stdlib's
	// re-encoding of it. (Not the original bytes: invalid UTF-8 coerces
	// to U+FFFD on decode, and stdlib is identically lossy there.)
	again, err := AppendDetectResponse(nil, &mine)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, mineBytes) {
		t.Fatalf("round trip diverged:\n got %s\nwant %s", again, mineBytes)
	}
}

func checkBatch(t *testing.T, batch *BatchResponse) {
	t.Helper()
	want, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendBatchResponse(nil, batch)
	if err != nil {
		t.Fatalf("codec errored where stdlib succeeded: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch encode diverged:\n got %s\nwant %s", got, want)
	}
	var std BatchResponse
	if err := json.Unmarshal(got, &std); err != nil {
		t.Fatalf("stdlib rejects codec output %s: %v", got, err)
	}
	mine, err := DecodeBatchResponseBytes(got)
	if err != nil {
		t.Fatalf("decoder rejects codec output %s: %v", got, err)
	}
	stdBytes, _ := json.Marshal(std)
	mineBytes, _ := json.Marshal(mine)
	if !bytes.Equal(stdBytes, mineBytes) {
		t.Fatalf("decoders disagree on %s:\n stdlib %s\n mine   %s", got, stdBytes, mineBytes)
	}
	again, err := AppendBatchResponse(nil, &mine)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, mineBytes) {
		t.Fatalf("batch round trip diverged:\n got %s\nwant %s", again, mineBytes)
	}
}

// FuzzDecodeResponseBytes throws arbitrary bytes at the pooled decoder.
// Contract: never panic, and never accept an input strict json.Unmarshal
// would reject (the decoder may be stricter — its ASCII key folding is
// deliberately narrower than the stdlib's Unicode simple-fold — so
// acceptance is one-directional).
func FuzzDecodeResponseBytes(f *testing.F) {
	f.Add([]byte(ensembleGolden))
	f.Add([]byte(legacyGolden))
	f.Add([]byte(`{"count":2,"flagged":1,"results":[{"domain":"a"},{"error":"x"}]}`))
	f.Add([]byte(`{"DOMAIN":"a","unknown":[{},null,1e-9],"idn":true}`))
	f.Add([]byte("null"))
	f.Add([]byte(`{"domain":"\ud83d\ude00\ud800"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if resp, err := DecodeDetectResponseBytes(data); err == nil {
			var std DetectResponse
			if serr := json.Unmarshal(data, &std); serr != nil {
				t.Fatalf("decoder accepted %q, stdlib rejects: %v", data, serr)
			}
			// Whatever we accepted must re-encode cleanly (modulo
			// non-finite floats, which arbitrary input can't produce).
			if _, err := AppendDetectResponse(nil, &resp); err != nil {
				t.Fatalf("accepted value fails to encode: %v", err)
			}
		}
		if resp, err := DecodeBatchResponseBytes(data); err == nil {
			var std BatchResponse
			if serr := json.Unmarshal(data, &std); serr != nil {
				t.Fatalf("batch decoder accepted %q, stdlib rejects: %v", data, serr)
			}
			if _, err := AppendBatchResponse(nil, &resp); err != nil {
				t.Fatal(err)
			}
		}
	})
}
