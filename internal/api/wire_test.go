package api

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeDetectStrict(t *testing.T) {
	for _, bad := range []string{
		`{`, `{"domain":""}`, `{"nope":"x"}`, `[]`, ``, `{"domain":"a.com"} garbage`,
		`{"domain":"a.com","extra":1}`,
	} {
		if _, err := DecodeDetect(strings.NewReader(bad)); !errors.Is(err, ErrMalformed) {
			t.Errorf("DecodeDetect(%q): err = %v, want ErrMalformed", bad, err)
		}
	}
	req, err := DecodeDetect(strings.NewReader(`{"domain":"xn--pple-43d.com"}`))
	if err != nil || req.Domain != "xn--pple-43d.com" {
		t.Fatalf("DecodeDetect valid: %+v, %v", req, err)
	}
}

func TestDecodeBatchCap(t *testing.T) {
	if _, err := DecodeBatch(strings.NewReader(`{"domains":[]}`), 4); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty batch: %v, want ErrMalformed", err)
	}
	if _, err := DecodeBatch(strings.NewReader(`{"domains":["a","b","c"]}`), 2); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v, want ErrBatchTooLarge", err)
	}
	req, err := DecodeBatch(strings.NewReader(`{"domains":["a.com","b.com"]}`), 2)
	if err != nil || len(req.Domains) != 2 {
		t.Fatalf("valid batch: %+v, %v", req, err)
	}
}
