// Package api is the detection service's wire format: the JSON request
// and response bodies spoken by the single-node server (internal/serve),
// the cluster gateway (internal/cluster), and the load/smoke client
// (cmd/idnload). Factoring the types out of the server means the
// gateway can split, forward and reassemble bodies without importing the
// serving layer (which imports the cluster layer — the dependency only
// works one way), and guarantees the gateway is wire-compatible with the
// workers it fronts: same decoder, same strictness, same error taxonomy.
//
// Decoding is strict everywhere: unknown fields, trailing garbage and
// oversized bodies are rejected — a detection API should never guess at
// malformed input, and a gateway that silently dropped fields a worker
// would reject could mask attacks.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"idnlab/internal/core"
)

// DetectRequest is the POST /v1/detect body.
type DetectRequest struct {
	Domain string `json:"domain"`
}

// BatchRequest is the POST /v1/detect/batch body.
type BatchRequest struct {
	Domains []string `json:"domains"`
}

// DetectResponse is one classified domain. For invalid inputs only
// Input and Error are set. Field order (Verdict first) is pinned by the
// serving layer's golden tests — do not reorder.
type DetectResponse struct {
	core.Verdict
	Flagged bool   `json:"flagged"`
	Cached  bool   `json:"cached"`
	Input   string `json:"input,omitempty"`
	Error   string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/detect/batch reply; Results aligns
// index-for-index with the request's Domains.
type BatchResponse struct {
	Count   int              `json:"count"`
	Flagged int              `json:"flagged"`
	Results []DetectResponse `json:"results"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Decode errors, distinguished so handlers map them to status codes:
// ErrMalformed → 400, ErrTooLarge / ErrBatchTooLarge → 413.
var (
	ErrMalformed     = errors.New("malformed request body")
	ErrTooLarge      = errors.New("request body too large")
	ErrBatchTooLarge = errors.New("batch exceeds configured maximum")
)

// decodeJSON strictly decodes one JSON object from r into dst: unknown
// fields, trailing garbage and oversized bodies (surfaced by the
// handler's http.MaxBytesReader) are all rejected.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return ErrTooLarge
		}
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data", ErrMalformed)
	}
	return nil
}

// DecodeDetect parses and validates a single-detect body. It is the
// surface the fuzz harness drives: any byte sequence must produce either
// a request or an error, never a panic.
func DecodeDetect(r io.Reader) (DetectRequest, error) {
	var req DetectRequest
	if err := decodeJSON(r, &req); err != nil {
		return DetectRequest{}, err
	}
	if req.Domain == "" {
		return DetectRequest{}, fmt.Errorf("%w: missing \"domain\"", ErrMalformed)
	}
	return req, nil
}

// DecodeBatch parses and validates a batch body against the configured
// size cap. Exceeding the cap is ErrBatchTooLarge (413), not a 400: the
// request is well-formed, just oversized.
func DecodeBatch(r io.Reader, maxBatch int) (BatchRequest, error) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		return BatchRequest{}, err
	}
	if len(req.Domains) == 0 {
		return BatchRequest{}, fmt.Errorf("%w: missing \"domains\"", ErrMalformed)
	}
	if len(req.Domains) > maxBatch {
		return BatchRequest{}, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(req.Domains), maxBatch)
	}
	return req, nil
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
