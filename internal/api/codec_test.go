package api

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"idnlab/internal/core"
	"idnlab/internal/feat"
)

// The append codec's entire value proposition is byte-identity with
// encoding/json: the serving layer's golden tests, every deployed
// client, and the gateway's scatter/gather reassembly all assume the
// stdlib bytes. These tests pin that equivalence three ways — on the
// golden fixtures, on adversarial string/float corpora, and on
// randomized structures — and pin the decoder to json.Unmarshal's
// field semantics on both canonical and quirky-but-valid inputs.

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCodecGoldenEquivalence(t *testing.T) {
	ens := ensembleResponse()
	got, err := AppendDetectResponse(nil, &ens)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != ensembleGolden {
		t.Errorf("codec drifted from ensemble golden:\n got %s\nwant %s", got, ensembleGolden)
	}
	legacy := DetectResponse{Verdict: core.Verdict{Domain: "example.com", Unicode: "example.com"}}
	if got, err = AppendDetectResponse(nil, &legacy); err != nil {
		t.Fatal(err)
	}
	if string(got) != legacyGolden {
		t.Errorf("codec drifted from legacy golden:\n got %s\nwant %s", got, legacyGolden)
	}
}

// trickyStrings exercises every escaping branch: HTML-escaped bytes,
// two-char escapes, \u00xx control bytes, invalid UTF-8 (both lone
// bytes and truncated sequences), U+2028/U+2029, surrogate-adjacent
// runes, and plain multibyte text.
var trickyStrings = []string{
	"",
	"example.com",
	"xn--pple-43d.com",
	"аpple.com", // Cyrillic а
	`quote " backslash \ slash /`,
	"<script>&amp;</script>",
	"tab\tnewline\ncr\rbell\x07null\x00",
	"backspace\bformfeed\f",
	"\x01\x02\x03\x1e\x1f\x20",
	"invalid utf8 \xff\xfe lone continuation \x80",
	"truncated multibyte \xe2\x82",
	"line sep \u2028 para sep \u2029",
	"emoji \U0001F600 and CJK 漢字",
	"mixed \xc3\x28 bad lead",
	strings.Repeat("long-", 100) + "\u00e9",
}

func TestAppendStringMatchesStdlib(t *testing.T) {
	for _, s := range trickyStrings {
		want := mustMarshal(t, s)
		got := appendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("appendString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
}

var trickyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.975, 0.9375, 13.5,
	1e-6, 9.999999e-7, 1e-7, -1e-7, 1e21, 9.999999999999999e20, -1e21,
	1e-308, 5e-324, math.MaxFloat64, -math.MaxFloat64,
	1.0 / 3.0, 2.2250738585072014e-308, 123456789.123456789,
	1e20, 1e22, -2.5e-10, 3.14159265358979,
}

func TestAppendFloatMatchesStdlib(t *testing.T) {
	for _, f := range trickyFloats {
		want := mustMarshal(t, f)
		got, err := appendFloat(nil, f)
		if err != nil {
			t.Fatalf("appendFloat(%v): %v", f, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendFloat(%v):\n got %s\nwant %s", f, got, want)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := appendFloat(nil, f); err == nil {
			t.Errorf("appendFloat(%v): want error (stdlib refuses non-finite)", f)
		}
	}
}

// randomString draws from a byte/rune alphabet weighted toward escape
// boundaries, including deliberately invalid UTF-8.
func randomString(rng *rand.Rand) string {
	n := rng.Intn(24)
	var b []byte
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			b = append(b, byte(rng.Intn(0x20))) // control byte
		case 1:
			b = append(b, []byte{'"', '\\', '<', '>', '&', '/'}[rng.Intn(6)])
		case 2:
			b = append(b, byte(rng.Intn(256))) // arbitrary — often invalid UTF-8
		case 3:
			b = append(b, string(rune(0x2026+rng.Intn(6)))...) // around U+2028/29
		case 4:
			b = append(b, string(rune(rng.Intn(0x10000)))...) // BMP incl. surrogate-adjacent
		default:
			b = append(b, byte('a'+rng.Intn(26)))
		}
	}
	return string(b)
}

func randomFloat(rng *rand.Rand) float64 {
	switch rng.Intn(5) {
	case 0:
		return float64(rng.Intn(100)) / 16 // exactly representable
	case 1:
		return rng.Float64() * math.Pow(10, float64(rng.Intn(50)-25))
	case 2:
		return -rng.Float64() * math.Pow(10, float64(rng.Intn(50)-25))
	case 3:
		return float64(rng.Int63())
	default:
		return rng.NormFloat64()
	}
}

func randomDetectResponse(rng *rand.Rand) DetectResponse {
	var r DetectResponse
	r.Domain = randomString(rng)
	r.Unicode = randomString(rng)
	r.IDN = rng.Intn(2) == 0
	if rng.Intn(2) == 0 {
		r.Homograph = &core.HomographMatch{
			Domain: randomString(rng), Unicode: randomString(rng),
			Brand: randomString(rng), SSIM: randomFloat(rng),
		}
	}
	if rng.Intn(2) == 0 {
		r.Semantic = &core.SemanticMatch{
			Domain: randomString(rng), Unicode: randomString(rng),
			Brand: randomString(rng), Keyword: randomString(rng),
		}
	}
	if rng.Intn(2) == 0 {
		m := &core.StatMatch{
			Domain: randomString(rng), Unicode: randomString(rng), Score: randomFloat(rng),
		}
		for i := rng.Intn(4); i > 0; i-- {
			m.Top = append(m.Top, feat.Contribution{
				Feature: randomString(rng), Value: randomFloat(rng), Impact: randomFloat(rng),
			})
		}
		r.Statistical = m
	}
	if rng.Intn(2) == 0 {
		r.Confidence = &core.EnsembleConfidence{
			Homograph: randomFloat(rng), Semantic: randomFloat(rng), Statistical: randomFloat(rng),
		}
	}
	if rng.Intn(2) == 0 {
		r.Suspicion = []string{core.SuspicionNone, core.SuspicionLow, core.SuspicionMedium, core.SuspicionHigh}[rng.Intn(4)]
	}
	r.Flagged = rng.Intn(2) == 0
	r.Cached = rng.Intn(2) == 0
	if rng.Intn(4) == 0 {
		r.Input = randomString(rng)
	}
	if rng.Intn(4) == 0 {
		r.Error = randomString(rng)
	}
	return r
}

func TestRandomizedEncoderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	buf := make([]byte, 0, 4096)
	for i := 0; i < 5000; i++ {
		r := randomDetectResponse(rng)
		want := mustMarshal(t, r)
		var err error
		buf, err = AppendDetectResponse(buf[:0], &r)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("iter %d: codec diverged:\n got %s\nwant %s", i, buf, want)
		}
	}
	for i := 0; i < 500; i++ {
		var b BatchResponse
		b.Count = rng.Intn(100)
		b.Flagged = rng.Intn(100)
		if rng.Intn(8) != 0 { // nil Results sometimes — encodes as null
			b.Results = []DetectResponse{}
			for j := rng.Intn(5); j > 0; j-- {
				b.Results = append(b.Results, randomDetectResponse(rng))
			}
		}
		want := mustMarshal(t, b)
		var err error
		buf, err = AppendBatchResponse(buf[:0], &b)
		if err != nil {
			t.Fatalf("batch iter %d: %v", i, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("batch iter %d: codec diverged:\n got %s\nwant %s", i, buf, want)
		}
	}
}

func TestRequestEncodersMatchStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		dr := DetectRequest{Domain: randomString(rng)}
		if got, want := AppendDetectRequest(nil, &dr), mustMarshal(t, dr); !bytes.Equal(got, want) {
			t.Fatalf("detect request diverged:\n got %s\nwant %s", got, want)
		}
		var br BatchRequest
		if rng.Intn(8) != 0 {
			br.Domains = []string{}
			for j := rng.Intn(5); j > 0; j-- {
				br.Domains = append(br.Domains, randomString(rng))
			}
		}
		if got, want := AppendBatchRequest(nil, &br), mustMarshal(t, br); !bytes.Equal(got, want) {
			t.Fatalf("batch request diverged:\n got %s\nwant %s", got, want)
		}
		er := ErrorResponse{Error: randomString(rng)}
		if got, want := AppendErrorResponse(nil, &er), mustMarshal(t, er); !bytes.Equal(got, want) {
			t.Fatalf("error response diverged:\n got %s\nwant %s", got, want)
		}
	}
}

// canon compares decoded values the way omitempty demands: via their
// canonical re-encoding (DeepEqual would distinguish nil vs empty
// slices that encode identically).
func canon(t *testing.T, v any) string {
	t.Helper()
	return string(mustMarshal(t, v))
}

func TestDecoderMatchesStdlibOnCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 3000; i++ {
		r := randomDetectResponse(rng)
		data := mustMarshal(t, r)
		var want DetectResponse
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDetectResponseBytes(data)
		if err != nil {
			t.Fatalf("iter %d: decode %s: %v", i, data, err)
		}
		if canon(t, got) != canon(t, want) {
			t.Fatalf("iter %d: decode diverged on %s:\n got %+v\nwant %+v", i, data, got, want)
		}
	}
	for i := 0; i < 300; i++ {
		var b BatchResponse
		b.Count, b.Flagged = rng.Intn(50), rng.Intn(50)
		for j := rng.Intn(4); j > 0; j-- {
			b.Results = append(b.Results, randomDetectResponse(rng))
		}
		data := mustMarshal(t, b)
		var want BatchResponse
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatchResponseBytes(data)
		if err != nil {
			t.Fatalf("batch iter %d: decode: %v", i, err)
		}
		if canon(t, got) != canon(t, want) {
			t.Fatalf("batch iter %d: decode diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestDecoderQuirkSemantics pins the json.Unmarshal behaviors the
// decoder must reproduce beyond the canonical happy path.
func TestDecoderQuirkSemantics(t *testing.T) {
	cases := []string{
		// Whitespace everywhere.
		" \t\r\n{ \"domain\" : \"a.com\" , \"idn\" : true } \n",
		// Unknown fields skipped, including nested structures.
		`{"domain":"a.com","future_field":{"deep":[1,2,{"x":null}]},"flagged":true}`,
		// ASCII case-insensitive keys.
		`{"DOMAIN":"a.com","Flagged":true,"CACHED":false,"IdN":true}`,
		// Last duplicate wins; null after a value is a no-op for scalars.
		`{"domain":"first","domain":"second","idn":true,"idn":null}`,
		// null into pointers and slices.
		`{"homograph":null,"confidence":null}`,
		`{"homograph":{"brand":"b"},"homograph":null}`,
		// Duplicate pointer keys merge.
		`{"homograph":{"brand":"b"},"homograph":{"ssim":0.5}}`,
		// Escapes in values, exotic numbers.
		`{"domain":"a\u0041\n\t\"\\\/b","statistical":{"score":1e-9,"top":[]}}`,
		`{"statistical":{"score":-0.0,"top":null}}`,
		// Empty object, empty results, null results.
		`{}`,
		`{"count":3}`,
		// Surrogate pairs and lone surrogates in strings.
		`{"domain":"\ud83d\ude00 pair \ud800 lone \udc00 low"}`,
		// Top-level null is an accepted no-op, exactly as json.Unmarshal.
		`null`, ` null `,
	}
	for _, data := range cases {
		var want DetectResponse
		wantErr := json.Unmarshal([]byte(data), &want)
		got, gotErr := DecodeDetectResponseBytes([]byte(data))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: stdlib=%v mine=%v", data, wantErr, gotErr)
		}
		if wantErr == nil && canon(t, got) != canon(t, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", data, got, want)
		}
	}
	batchCases := []string{
		`{"count":2,"flagged":0,"results":[]}`,
		`{"count":2,"flagged":0,"results":null}`,
		`{"results":[{"domain":"a"},{}]}`,
		`{"COUNT":7,"Results":[{"DOMAIN":"x"}]}`,
	}
	for _, data := range batchCases {
		var want BatchResponse
		if err := json.Unmarshal([]byte(data), &want); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBatchResponseBytes([]byte(data))
		if err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		if canon(t, got) != canon(t, want) {
			t.Errorf("%s:\n got %+v\nwant %+v", data, got, want)
		}
	}
}

// TestDecoderRejects pins the malformed inputs both decoders must
// refuse — every case here also fails json.Unmarshal.
func TestDecoderRejects(t *testing.T) {
	cases := []string{
		``, `   `, `true`, `42`, `"str"`, `[]`, `null }`, `nullx`,
		`{`, `{"domain"}`, `{"domain":}`, `{"domain":"a"`,
		`{"domain":"a"} trailing`, `{"domain":"a"}{}`,
		`{"idn":1}`, `{"idn":"true"}`, `{"domain":42}`,
		`{"count":1.5}`, `{"count":1e2}`, `{"count":"3"}`,
		"{\"domain\":\"raw\x01control\"}",
		`{"domain":"bad \x escape"}`, `{"domain":"trunc \u12"}`,
		`{"statistical":{"score":01}}`, `{"statistical":{"score":+1}}`,
		`{"statistical":{"score":1.}}`, `{"statistical":{"score":.5}}`,
		`{"statistical":{"score":1e}}`, `{"statistical":{"score":1e999}}`,
		`{"results":[}`, `{"results":[{"domain":"a"},]}`,
		`{"homograph":[]}`, `{"results":{}}`,
		strings.Repeat(`{"future":`, 10001) + `1` + strings.Repeat(`}`, 10001),
	}
	for _, data := range cases {
		var sink DetectResponse
		if err := json.Unmarshal([]byte(data), &sink); err == nil {
			// Keep the corpus honest: everything here must be a stdlib
			// error too (count/results cases only error for Batch).
			var bsink BatchResponse
			if err := json.Unmarshal([]byte(data), &bsink); err == nil {
				t.Fatalf("test corpus bug: stdlib accepts %q", data)
			}
			if _, err := DecodeBatchResponseBytes([]byte(data)); err == nil {
				t.Errorf("batch decoder accepted %q", data)
			}
			continue
		}
		if _, err := DecodeDetectResponseBytes([]byte(data)); err == nil {
			t.Errorf("decoder accepted %q", data)
		}
	}
}

// TestWriteHelpersMatchWriteJSON pins that the codec write path emits
// exactly what api.WriteJSON (json.Encoder) emits — status, headers,
// body, trailing newline.
func TestWriteHelpersMatchWriteJSON(t *testing.T) {
	ens := ensembleResponse()
	batch := BatchResponse{Count: 1, Flagged: 1, Results: []DetectResponse{ens}}

	oldW, newW := httptest.NewRecorder(), httptest.NewRecorder()
	WriteJSON(oldW, 200, ens)
	WriteDetect(newW, 200, &ens)
	if oldW.Body.String() != newW.Body.String() || oldW.Code != newW.Code ||
		oldW.Header().Get("Content-Type") != newW.Header().Get("Content-Type") {
		t.Errorf("WriteDetect diverged from WriteJSON:\n got %q\nwant %q", newW.Body, oldW.Body)
	}

	oldW, newW = httptest.NewRecorder(), httptest.NewRecorder()
	WriteJSON(oldW, 200, batch)
	WriteBatch(newW, 200, &batch)
	if oldW.Body.String() != newW.Body.String() {
		t.Errorf("WriteBatch diverged from WriteJSON:\n got %q\nwant %q", newW.Body, oldW.Body)
	}

	// Non-finite fallback: same observable behavior as the stdlib path
	// (headers + status sent, no body — Encode's error is swallowed).
	bad := DetectResponse{Verdict: core.Verdict{
		Domain:    "x",
		Homograph: &core.HomographMatch{SSIM: math.NaN()},
	}}
	oldW, newW = httptest.NewRecorder(), httptest.NewRecorder()
	WriteJSON(oldW, 200, bad)
	WriteDetect(newW, 200, &bad)
	if oldW.Body.String() != newW.Body.String() || oldW.Code != newW.Code {
		t.Errorf("non-finite fallback diverged:\n got %q/%d\nwant %q/%d",
			newW.Body, newW.Code, oldW.Body, oldW.Code)
	}
}

// --- benchmarks gated by make bench-gateway ---
//
// The Stdlib variants exist to record the old-path baseline
// (BENCH_baseline_gateway.txt maps them onto the codec names); the
// codec variants run under benchjson's -require-zero-allocs gate.

func benchBatch(n int) BatchResponse {
	ens := ensembleResponse()
	b := BatchResponse{Count: n, Flagged: n}
	for i := 0; i < n; i++ {
		b.Results = append(b.Results, ens)
	}
	return b
}

func BenchmarkEncodeDetectResponse(b *testing.B) {
	r := ensembleResponse()
	buf, err := AppendDetectResponse(nil, &r)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendDetectResponse(buf[:0], &r)
	}
}

func BenchmarkEncodeDetectResponseStdlib(b *testing.B) {
	r := ensembleResponse()
	out, _ := json.Marshal(r)
	b.SetBytes(int64(len(out)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatchResponse64(b *testing.B) {
	batch := benchBatch(64)
	buf, err := AppendBatchResponse(nil, &batch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendBatchResponse(buf[:0], &batch)
	}
}

func BenchmarkEncodeBatchResponse64Stdlib(b *testing.B) {
	batch := benchBatch(64)
	out, _ := json.Marshal(batch)
	b.SetBytes(int64(len(out)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDetectRequest(b *testing.B) {
	req := DetectRequest{Domain: "xn--pple-43d.com"}
	buf := AppendDetectRequest(nil, &req)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendDetectRequest(buf[:0], &req)
	}
}

func BenchmarkEncodeBatchRequest64(b *testing.B) {
	req := BatchRequest{}
	for i := 0; i < 64; i++ {
		req.Domains = append(req.Domains, "xn--pple-43d.com")
	}
	buf := AppendBatchRequest(nil, &req)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBatchRequest(buf[:0], &req)
	}
}

func BenchmarkDecodeBatchResponse64(b *testing.B) {
	batch := benchBatch(64)
	data, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatchResponseBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBatchResponse64Stdlib(b *testing.B) {
	batch := benchBatch(64)
	data, err := json.Marshal(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
