package api

import (
	"encoding/json"
	"testing"

	"idnlab/internal/core"
	"idnlab/internal/feat"
)

// The wire format is a compatibility contract three ways: pre-ensemble
// clients must keep working against ensemble-enabled servers, ensemble
// fields must survive the gateway's scatter/gather decode→re-encode
// round trip byte-for-byte, and servers without a statistical model
// must emit bytes identical to the pre-ensemble format. These goldens
// pin all three. If one fails because the format deliberately changed,
// update the golden AND bump the compatibility notes in DESIGN.md.

// ensembleResponse is a fully populated three-detector verdict as an
// ensemble-enabled worker would emit it.
func ensembleResponse() DetectResponse {
	return DetectResponse{
		Verdict: core.Verdict{
			Domain:  "xn--pple-43d.com",
			Unicode: "аpple.com",
			IDN:     true,
			Homograph: &core.HomographMatch{
				Domain:  "xn--pple-43d.com",
				Unicode: "аpple.com",
				Brand:   "apple.com",
				SSIM:    0.975,
			},
			Statistical: &core.StatMatch{
				Domain:  "xn--pple-43d.com",
				Unicode: "аpple.com",
				Score:   0.9375,
				Top: []feat.Contribution{
					{Feature: "confusable_mix", Value: 1, Impact: 13.5},
					{Feature: "puny_expansion", Value: 0.25, Impact: 3.5},
				},
			},
			Confidence: &core.EnsembleConfidence{
				Homograph:   0.975,
				Semantic:    0,
				Statistical: 0.9375,
			},
			Suspicion: core.SuspicionHigh,
		},
		Flagged: true,
	}
}

const ensembleGolden = `{"domain":"xn--pple-43d.com","unicode":"аpple.com","idn":true,` +
	`"homograph":{"domain":"xn--pple-43d.com","unicode":"аpple.com","brand":"apple.com","ssim":0.975},` +
	`"statistical":{"domain":"xn--pple-43d.com","unicode":"аpple.com","score":0.9375,` +
	`"top":[{"feature":"confusable_mix","value":1,"impact":13.5},{"feature":"puny_expansion","value":0.25,"impact":3.5}]},` +
	`"confidence":{"homograph":0.975,"semantic":0,"statistical":0.9375},` +
	`"suspicion":"high","flagged":true,"cached":false}`

// legacyGolden is the pre-ensemble two-detector format — what a worker
// without a statistical model emits, and what every client built before
// the ensemble understood.
const legacyGolden = `{"domain":"example.com","unicode":"example.com","idn":false,"flagged":false,"cached":false}`

func TestGoldenEnsembleEncoding(t *testing.T) {
	got, err := json.Marshal(ensembleResponse())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != ensembleGolden {
		t.Errorf("ensemble wire bytes drifted:\n got %s\nwant %s", got, ensembleGolden)
	}
}

func TestGoldenLegacyEncodingUnchanged(t *testing.T) {
	// A verdict with no ensemble state must serialize exactly as before
	// the ensemble existed: no statistical/confidence/suspicion keys.
	resp := DetectResponse{Verdict: core.Verdict{Domain: "example.com", Unicode: "example.com"}}
	got, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != legacyGolden {
		t.Errorf("legacy wire bytes drifted:\n got %s\nwant %s", got, legacyGolden)
	}
}

// TestScatterGatherRoundTrip pins the gateway's transformation: it
// unmarshals each worker reply into DetectResponse and re-marshals the
// reassembled batch. Both directions must be lossless for both formats,
// or a gateway upgrade would silently strip fields from worker replies
// (new worker behind old gateway) or invent them (old worker behind new
// gateway).
func TestScatterGatherRoundTrip(t *testing.T) {
	for _, golden := range []string{ensembleGolden, legacyGolden} {
		var resp DetectResponse
		if err := json.Unmarshal([]byte(golden), &resp); err != nil {
			t.Fatalf("unmarshal %s: %v", golden, err)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != golden {
			t.Errorf("round trip not lossless:\n got %s\nwant %s", out, golden)
		}
	}
}

// TestBatchRoundTrip does the same through the BatchResponse envelope
// the gateway actually reassembles, mixing verdicts with a per-item
// error entry.
func TestBatchRoundTrip(t *testing.T) {
	batch := BatchResponse{
		Count:   3,
		Flagged: 1,
		Results: []DetectResponse{
			ensembleResponse(),
			{Verdict: core.Verdict{Domain: "example.com", Unicode: "example.com"}},
			{Input: "bad..domain", Error: "invalid domain"},
		},
	}
	first, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BatchResponse
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("batch round trip not lossless:\n got %s\nwant %s", second, first)
	}
}

// legacyClient mirrors the response struct shipped in pre-ensemble
// clients (no statistical, confidence or suspicion fields). Frozen:
// changing it would defeat the test's purpose.
type legacyClient struct {
	Domain    string               `json:"domain"`
	Unicode   string               `json:"unicode"`
	IDN       bool                 `json:"idn"`
	Homograph *core.HomographMatch `json:"homograph,omitempty"`
	Semantic  *core.SemanticMatch  `json:"semantic,omitempty"`
	Flagged   bool                 `json:"flagged"`
	Cached    bool                 `json:"cached"`
	Input     string               `json:"input,omitempty"`
	Error     string               `json:"error,omitempty"`
}

func TestBackCompatOldClientNewServer(t *testing.T) {
	// A pre-ensemble client decoding an ensemble-enabled reply must see
	// every field it knows about, unharmed by the keys it doesn't.
	var old legacyClient
	if err := json.Unmarshal([]byte(ensembleGolden), &old); err != nil {
		t.Fatalf("old client rejects ensemble reply: %v", err)
	}
	if old.Domain != "xn--pple-43d.com" || !old.Flagged || old.Homograph == nil ||
		old.Homograph.Brand != "apple.com" || old.Homograph.SSIM != 0.975 {
		t.Errorf("old client misread ensemble reply: %+v", old)
	}
}

func TestBackCompatNewClientOldServer(t *testing.T) {
	// The current struct decoding a pre-ensemble reply must leave every
	// ensemble field at its zero value — absence of evidence, not a
	// fabricated "none".
	var resp DetectResponse
	if err := json.Unmarshal([]byte(legacyGolden), &resp); err != nil {
		t.Fatalf("decode legacy reply: %v", err)
	}
	if resp.Statistical != nil || resp.Confidence != nil || resp.Suspicion != "" {
		t.Errorf("legacy reply grew ensemble state: %+v", resp.Verdict)
	}
	if resp.Domain != "example.com" || resp.Flagged {
		t.Errorf("legacy fields misread: %+v", resp)
	}
}
