// decode.go is the codec's read side: a pooled, allocation-disciplined
// decoder for DetectResponse and BatchResponse bodies — the two shapes
// the gateway reassembles on every proxied request and the coalescer
// demultiplexes on every merged window.
//
// Semantics mirror json.Unmarshal (not the strict DisallowUnknownFields
// request decoders in wire.go — responses flow gateway←worker inside
// the trust boundary, and a gateway must keep forwarding verdicts when
// a newer worker adds a response field):
//   - unknown object keys are skipped, known keys match ASCII
//     case-insensitively, the last duplicate wins;
//   - null is a no-op for scalars, nil for pointers and slices;
//   - int fields take integer literals only (1e2 and 1.5 are errors,
//     exactly as encoding/json rejects them for Go ints);
//   - string literals reject raw control bytes, coerce invalid UTF-8
//     and unpaired surrogates to U+FFFD;
//   - nesting depth is capped, trailing non-whitespace is an error.
//
// The one place it is narrower than the stdlib: key folding is ASCII
// (stdlib's simple-fold would also match a U+017F "ſ" spelling of
// "semantic"). Canonical encodings — everything this repo's encoders or
// encoding/json produce — decode identically; the fuzz harness pins the
// exact contract (FuzzCodecRoundTrip for canonical bytes, the
// arbitrary-bytes fuzzer for "accepts ⇒ stdlib accepts").
//
// Each call borrows one pooled decoder carrying a reusable unescape
// scratch buffer; out-strings are copied out of it, so the caller's
// input buffer (a pooled router reply body, typically) can be released
// the moment the call returns.
package api

import (
	"fmt"
	"strconv"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"idnlab/internal/core"
	"idnlab/internal/feat"
)

// maxDecodeDepth matches encoding/json's scanner nesting cap.
const maxDecodeDepth = 10000

type decoder struct {
	data    []byte
	pos     int
	depth   int
	scratch []byte // unescape buffer, reused across string literals
}

const maxPooledScratch = 1 << 16

var decoderPool = sync.Pool{New: func() any { return &decoder{scratch: make([]byte, 0, 512)} }}

func getDecoder(data []byte) *decoder {
	d := decoderPool.Get().(*decoder)
	d.data, d.pos, d.depth = data, 0, 0
	return d
}

func putDecoder(d *decoder) {
	d.data = nil // never retain the caller's buffer past the call
	if cap(d.scratch) > maxPooledScratch {
		return
	}
	decoderPool.Put(d)
}

// DecodeDetectResponseBytes parses one DetectResponse from data with
// json.Unmarshal field semantics (see the package comment above).
func DecodeDetectResponseBytes(data []byte) (DetectResponse, error) {
	d := getDecoder(data)
	defer putDecoder(d)
	var resp DetectResponse
	null, err := d.tryNull() // stdlib: a top-level null is an accepted no-op
	if err != nil {
		return DetectResponse{}, err
	}
	if !null {
		if err := d.decodeDetectResponse(&resp); err != nil {
			return DetectResponse{}, err
		}
	}
	if err := d.expectEOF(); err != nil {
		return DetectResponse{}, err
	}
	return resp, nil
}

// DecodeBatchResponseBytes parses one BatchResponse from data.
func DecodeBatchResponseBytes(data []byte) (BatchResponse, error) {
	d := getDecoder(data)
	defer putDecoder(d)
	var resp BatchResponse
	null, err := d.tryNull()
	if err != nil {
		return BatchResponse{}, err
	}
	if !null {
		if err := d.decodeBatchResponse(&resp); err != nil {
			return BatchResponse{}, err
		}
	}
	if err := d.expectEOF(); err != nil {
		return BatchResponse{}, err
	}
	return resp, nil
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf("api: decode offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func (d *decoder) expectEOF() error {
	d.skipWS()
	if d.pos != len(d.data) {
		return d.errf("trailing data")
	}
	return nil
}

// peek returns the next non-whitespace byte without consuming it.
func (d *decoder) peek() (byte, error) {
	d.skipWS()
	if d.pos >= len(d.data) {
		return 0, d.errf("unexpected end of input")
	}
	return d.data[d.pos], nil
}

func (d *decoder) consume(c byte) error {
	b, err := d.peek()
	if err != nil {
		return err
	}
	if b != c {
		return d.errf("expected %q, found %q", c, b)
	}
	d.pos++
	return nil
}

// tryNull consumes a null literal if one is next.
func (d *decoder) tryNull() (bool, error) {
	b, err := d.peek()
	if err != nil {
		return false, err
	}
	if b != 'n' {
		return false, nil
	}
	return true, d.literal("null")
}

func (d *decoder) literal(lit string) error {
	if len(d.data)-d.pos < len(lit) || string(d.data[d.pos:d.pos+len(lit)]) != lit {
		return d.errf("invalid literal")
	}
	d.pos += len(lit)
	return nil
}

// parseString decodes a JSON string literal into d.scratch and returns
// a copied-out Go string, with stdlib semantics: raw control bytes are
// rejected, invalid UTF-8 and unpaired surrogates become U+FFFD.
func (d *decoder) parseString() (string, error) {
	if err := d.consume('"'); err != nil {
		return "", err
	}
	// Fast path: scan for a literal without escapes or non-ASCII.
	start := d.pos
	for d.pos < len(d.data) {
		b := d.data[d.pos]
		if b == '"' {
			s := string(d.data[start:d.pos])
			d.pos++
			return s, nil
		}
		if b == '\\' || b < 0x20 || b >= utf8.RuneSelf {
			break
		}
		d.pos++
	}
	// Slow path: unescape into scratch.
	buf := d.scratch[:0]
	buf = append(buf, d.data[start:d.pos]...)
	for d.pos < len(d.data) {
		b := d.data[d.pos]
		switch {
		case b == '"':
			d.pos++
			d.scratch = buf
			return string(buf), nil
		case b < 0x20:
			return "", d.errf("invalid control character in string literal")
		case b == '\\':
			d.pos++
			if d.pos >= len(d.data) {
				return "", d.errf("unexpected end of string escape")
			}
			e := d.data[d.pos]
			d.pos++
			switch e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				r, err := d.hex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					// A high surrogate followed by \uDC00–\uDFFF combines;
					// anything else is replaced, as stdlib unquote does.
					r2 := rune(utf8.RuneError)
					if d.pos+1 < len(d.data) && d.data[d.pos] == '\\' && d.data[d.pos+1] == 'u' {
						save := d.pos
						d.pos += 2
						lo, err := d.hex4()
						if err != nil {
							return "", err
						}
						if c := utf16.DecodeRune(r, lo); c != utf8.RuneError {
							r2 = c
						} else {
							d.pos = save // re-scan the second escape on its own
						}
					}
					buf = utf8.AppendRune(buf, r2)
				} else {
					buf = utf8.AppendRune(buf, r)
				}
			default:
				return "", d.errf("invalid string escape %q", e)
			}
		case b < utf8.RuneSelf:
			buf = append(buf, b)
			d.pos++
		default:
			r, size := utf8.DecodeRune(d.data[d.pos:])
			if r == utf8.RuneError && size == 1 {
				buf = utf8.AppendRune(buf, utf8.RuneError)
				d.pos++
				break
			}
			buf = append(buf, d.data[d.pos:d.pos+size]...)
			d.pos += size
		}
	}
	return "", d.errf("unterminated string literal")
}

func (d *decoder) hex4() (rune, error) {
	if len(d.data)-d.pos < 4 {
		return 0, d.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := d.data[d.pos+i]
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return 0, d.errf("invalid \\u escape")
		}
		r = r<<4 + rune(c)
	}
	d.pos += 4
	return r, nil
}

// numberToken validates and consumes one JSON number literal, returning
// its raw bytes.
func (d *decoder) numberToken() ([]byte, error) {
	d.skipWS()
	start := d.pos
	if d.pos < len(d.data) && d.data[d.pos] == '-' {
		d.pos++
	}
	switch {
	case d.pos < len(d.data) && d.data[d.pos] == '0':
		d.pos++
	case d.pos < len(d.data) && d.data[d.pos] >= '1' && d.data[d.pos] <= '9':
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	default:
		return nil, d.errf("invalid number literal")
	}
	if d.pos < len(d.data) && d.data[d.pos] == '.' {
		d.pos++
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.errf("invalid number literal")
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	if d.pos < len(d.data) && (d.data[d.pos] == 'e' || d.data[d.pos] == 'E') {
		d.pos++
		if d.pos < len(d.data) && (d.data[d.pos] == '+' || d.data[d.pos] == '-') {
			d.pos++
		}
		if d.pos >= len(d.data) || d.data[d.pos] < '0' || d.data[d.pos] > '9' {
			return nil, d.errf("invalid number literal")
		}
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
		}
	}
	return d.data[start:d.pos], nil
}

// parseFloatField decodes a number (or null no-op) into *f.
func (d *decoder) parseFloatField(f *float64) error {
	if null, err := d.tryNull(); err != nil || null {
		return err
	}
	tok, err := d.numberToken()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return d.errf("number %s out of range", tok)
	}
	*f = v
	return nil
}

// parseIntField decodes an integer literal (or null no-op) into *n.
// Fractional or exponent forms error, matching encoding/json for ints.
func (d *decoder) parseIntField(n *int) error {
	if null, err := d.tryNull(); err != nil || null {
		return err
	}
	tok, err := d.numberToken()
	if err != nil {
		return err
	}
	v, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return d.errf("cannot decode number %s into int", tok)
	}
	*n = int(v)
	return nil
}

func (d *decoder) parseStringField(s *string) error {
	if null, err := d.tryNull(); err != nil || null {
		return err
	}
	v, err := d.parseString()
	if err != nil {
		return err
	}
	*s = v
	return nil
}

func (d *decoder) parseBoolField(b *bool) error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case 't':
		*b = true
		return d.literal("true")
	case 'f':
		*b = false
		return d.literal("false")
	case 'n':
		return d.literal("null") // no-op, as stdlib
	}
	return d.errf("expected boolean")
}

// skipValue consumes one JSON value of any type, validating syntax.
func (d *decoder) skipValue() error {
	c, err := d.peek()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		return d.walkObject(func([]byte) (bool, error) { return false, nil })
	case '[':
		if err := d.enter(); err != nil {
			return err
		}
		d.pos++
		if b, err := d.peek(); err != nil {
			return err
		} else if b == ']' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			b, err := d.peek()
			if err != nil {
				return err
			}
			d.pos++
			if b == ']' {
				d.depth--
				return nil
			}
			if b != ',' {
				return d.errf("expected ',' or ']' in array")
			}
		}
	case '"':
		_, err := d.parseString()
		return err
	case 't':
		return d.literal("true")
	case 'f':
		return d.literal("false")
	case 'n':
		return d.literal("null")
	default:
		_, err := d.numberToken()
		return err
	}
}

func (d *decoder) enter() error {
	d.depth++
	if d.depth > maxDecodeDepth {
		return d.errf("exceeded max nesting depth")
	}
	return nil
}

// walkObject consumes one JSON object, invoking field for each key.
// field returns whether it consumed the key's value; unconsumed values
// are skipped. The key slice aliases d.scratch or d.data — field must
// decide before parsing the value (which may reuse the scratch).
func (d *decoder) walkObject(field func(key []byte) (bool, error)) error {
	if err := d.enter(); err != nil {
		return err
	}
	if err := d.consume('{'); err != nil {
		return err
	}
	if b, err := d.peek(); err != nil {
		return err
	} else if b == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		key, err := d.parseKey()
		if err != nil {
			return err
		}
		if err := d.consume(':'); err != nil {
			return err
		}
		handled, err := field(key)
		if err != nil {
			return err
		}
		if !handled {
			if err := d.skipValue(); err != nil {
				return err
			}
		}
		b, err := d.peek()
		if err != nil {
			return err
		}
		d.pos++
		if b == '}' {
			d.depth--
			return nil
		}
		if b != ',' {
			return d.errf("expected ',' or '}' in object")
		}
	}
}

// parseKey reads an object key as raw bytes. Keys without escapes (the
// overwhelmingly common case) are returned as a subslice of d.data —
// zero copies; escaped keys go through the scratch buffer.
func (d *decoder) parseKey() ([]byte, error) {
	if err := d.consume('"'); err != nil {
		return nil, err
	}
	start := d.pos
	for d.pos < len(d.data) {
		b := d.data[d.pos]
		if b == '"' {
			key := d.data[start:d.pos]
			d.pos++
			return key, nil
		}
		if b == '\\' || b < 0x20 {
			break
		}
		d.pos++
	}
	// Rare: escaped or malformed key. Re-parse via the string machinery.
	d.pos = start - 1
	s, err := d.parseString()
	if err != nil {
		return nil, err
	}
	d.scratch = append(d.scratch[:0], s...)
	return d.scratch, nil
}

// keyIs reports whether key equals name under ASCII case folding —
// the match rule for every field name in this wire format (all
// lowercase ASCII).
func keyIs(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		if b != name[i] {
			return false
		}
	}
	return true
}

func (d *decoder) decodeHomograph(m *core.HomographMatch) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "domain"):
			return true, d.parseStringField(&m.Domain)
		case keyIs(key, "unicode"):
			return true, d.parseStringField(&m.Unicode)
		case keyIs(key, "brand"):
			return true, d.parseStringField(&m.Brand)
		case keyIs(key, "ssim"):
			return true, d.parseFloatField(&m.SSIM)
		}
		return false, nil
	})
}

func (d *decoder) decodeSemantic(m *core.SemanticMatch) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "domain"):
			return true, d.parseStringField(&m.Domain)
		case keyIs(key, "unicode"):
			return true, d.parseStringField(&m.Unicode)
		case keyIs(key, "brand"):
			return true, d.parseStringField(&m.Brand)
		case keyIs(key, "keyword"):
			return true, d.parseStringField(&m.Keyword)
		}
		return false, nil
	})
}

func (d *decoder) decodeContribution(c *feat.Contribution) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "feature"):
			return true, d.parseStringField(&c.Feature)
		case keyIs(key, "value"):
			return true, d.parseFloatField(&c.Value)
		case keyIs(key, "impact"):
			return true, d.parseFloatField(&c.Impact)
		}
		return false, nil
	})
}

func (d *decoder) decodeStatistical(m *core.StatMatch) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "domain"):
			return true, d.parseStringField(&m.Domain)
		case keyIs(key, "unicode"):
			return true, d.parseStringField(&m.Unicode)
		case keyIs(key, "score"):
			return true, d.parseFloatField(&m.Score)
		case keyIs(key, "top"):
			if null, err := d.tryNull(); err != nil || null {
				if null {
					m.Top = nil
				}
				return true, err
			}
			if err := d.consume('['); err != nil {
				return true, err
			}
			if err := d.enter(); err != nil {
				return true, err
			}
			m.Top = []feat.Contribution{}
			if b, err := d.peek(); err != nil {
				return true, err
			} else if b == ']' {
				d.pos++
				d.depth--
				return true, nil
			}
			for {
				var c feat.Contribution
				if err := d.decodeContribution(&c); err != nil {
					return true, err
				}
				m.Top = append(m.Top, c)
				b, err := d.peek()
				if err != nil {
					return true, err
				}
				d.pos++
				if b == ']' {
					d.depth--
					return true, nil
				}
				if b != ',' {
					return true, d.errf("expected ',' or ']' in array")
				}
			}
		}
		return false, nil
	})
}

func (d *decoder) decodeConfidence(c *core.EnsembleConfidence) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "homograph"):
			return true, d.parseFloatField(&c.Homograph)
		case keyIs(key, "semantic"):
			return true, d.parseFloatField(&c.Semantic)
		case keyIs(key, "statistical"):
			return true, d.parseFloatField(&c.Statistical)
		}
		return false, nil
	})
}

// ptrField decodes either null (→ nil, as stdlib does for pointers) or
// a nested object via decode into a freshly allocated *T.
func ptrField[T any](d *decoder, p **T, decode func(*decoder, *T) error) error {
	if null, err := d.tryNull(); err != nil || null {
		if null {
			*p = nil
		}
		return err
	}
	v := new(T)
	if *p != nil {
		*v = **p // duplicate keys merge into the existing value, as stdlib
	}
	if err := decode(d, v); err != nil {
		return err
	}
	*p = v
	return nil
}

func (d *decoder) decodeDetectResponse(r *DetectResponse) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "domain"):
			return true, d.parseStringField(&r.Domain)
		case keyIs(key, "unicode"):
			return true, d.parseStringField(&r.Unicode)
		case keyIs(key, "idn"):
			return true, d.parseBoolField(&r.IDN)
		case keyIs(key, "homograph"):
			return true, ptrField(d, &r.Homograph, (*decoder).decodeHomograph)
		case keyIs(key, "semantic"):
			return true, ptrField(d, &r.Semantic, (*decoder).decodeSemantic)
		case keyIs(key, "statistical"):
			return true, ptrField(d, &r.Statistical, (*decoder).decodeStatistical)
		case keyIs(key, "confidence"):
			return true, ptrField(d, &r.Confidence, (*decoder).decodeConfidence)
		case keyIs(key, "suspicion"):
			return true, d.parseStringField(&r.Suspicion)
		case keyIs(key, "flagged"):
			return true, d.parseBoolField(&r.Flagged)
		case keyIs(key, "cached"):
			return true, d.parseBoolField(&r.Cached)
		case keyIs(key, "input"):
			return true, d.parseStringField(&r.Input)
		case keyIs(key, "error"):
			return true, d.parseStringField(&r.Error)
		}
		return false, nil
	})
}

func (d *decoder) decodeBatchResponse(r *BatchResponse) error {
	return d.walkObject(func(key []byte) (bool, error) {
		switch {
		case keyIs(key, "count"):
			return true, d.parseIntField(&r.Count)
		case keyIs(key, "flagged"):
			return true, d.parseIntField(&r.Flagged)
		case keyIs(key, "results"):
			if null, err := d.tryNull(); err != nil || null {
				if null {
					r.Results = nil
				}
				return true, err
			}
			if err := d.consume('['); err != nil {
				return true, err
			}
			if err := d.enter(); err != nil {
				return true, err
			}
			r.Results = []DetectResponse{}
			if b, err := d.peek(); err != nil {
				return true, err
			} else if b == ']' {
				d.pos++
				d.depth--
				return true, nil
			}
			for {
				var item DetectResponse
				if err := d.decodeDetectResponse(&item); err != nil {
					return true, err
				}
				r.Results = append(r.Results, item)
				b, err := d.peek()
				if err != nil {
					return true, err
				}
				d.pos++
				if b == ']' {
					d.depth--
					return true, nil
				}
				if b != ',' {
					return true, d.errf("expected ',' or ']' in array")
				}
			}
		}
		return false, nil
	})
}
