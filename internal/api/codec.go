// codec.go is the wire format's zero-allocation hot path: append-based
// encoders for every request/response body the serving tier speaks,
// byte-identical to what encoding/json produces for the same values.
//
// Why hand-rolled: the indexed detector answers a single-domain lookup
// in ~8 µs, but the stock wire path spends several times that in
// reflection-driven marshalling — four encoding/json allocations per
// proxied request (gateway forward, worker decode, worker encode,
// gateway reassembly). At gateway QPS the codec, not the detector, was
// the dominant per-request cost. The append encoders below write into a
// caller-supplied buffer (pooled via GetBuf/PutBuf on the response-write
// path), allocate nothing, and are pinned to encoding/json's exact
// output bytes by golden, randomized-equivalence and fuzz tests — so
// coalescing gateways, old clients and new workers can be mixed freely:
// the optimization is invisible on the wire.
//
// Byte-identity contract (verified against the Go 1.2x encoder):
//   - strings escape exactly like encoding/json with EscapeHTML on:
//     ", \, control bytes, <, >, &, U+2028/U+2029, and invalid UTF-8
//     coerced to U+FFFD;
//   - floats format as ES6 number-to-string ('f' within [1e-6, 1e21),
//     'e' outside, exponent unpadded);
//   - field order and omitempty behavior match the struct tags in
//     wire.go (and core.Verdict) literally.
//
// Non-finite floats are the one divergence in shape, not bytes:
// encoding/json fails the whole Marshal with *UnsupportedValueError;
// the append encoders return ErrNonFinite and leave the buffer's extra
// bytes unspecified. Callers fall back to the stdlib path (which fails
// identically on the wire: headers sent, no body).
package api

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"

	"idnlab/internal/core"
	"idnlab/internal/feat"
)

// ErrNonFinite reports a NaN or ±Inf float, which JSON cannot carry.
// It is the only error the append encoders can return.
var ErrNonFinite = errors.New("api: non-finite float is not representable in JSON")

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string literal, escaping exactly as
// encoding/json does with HTML escaping enabled (the json.Marshal
// default, and therefore what every golden test in this repo pins).
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		// U+2028/U+2029 are valid JSON but break JSONP; encoding/json
		// escapes them unconditionally, so we must too.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendFloat appends f in encoding/json's ES6-style format.
func appendFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, ErrNonFinite
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, exactly as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// AppendDetectRequest appends req's JSON encoding to dst and returns
// the extended buffer. Infallible: the body carries no floats.
func AppendDetectRequest(dst []byte, req *DetectRequest) []byte {
	dst = append(dst, `{"domain":`...)
	dst = appendString(dst, req.Domain)
	return append(dst, '}')
}

// AppendBatchRequest appends req's JSON encoding to dst. A nil Domains
// slice encodes as null, matching encoding/json.
func AppendBatchRequest(dst []byte, req *BatchRequest) []byte {
	dst = append(dst, `{"domains":`...)
	if req.Domains == nil {
		return append(append(dst, "null"...), '}')
	}
	dst = append(dst, '[')
	for i, d := range req.Domains {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendString(dst, d)
	}
	return append(dst, ']', '}')
}

// AppendErrorResponse appends e's JSON encoding to dst. Infallible.
func AppendErrorResponse(dst []byte, e *ErrorResponse) []byte {
	dst = append(dst, `{"error":`...)
	dst = appendString(dst, e.Error)
	return append(dst, '}')
}

func appendHomograph(dst []byte, m *core.HomographMatch) ([]byte, error) {
	dst = append(dst, `{"domain":`...)
	dst = appendString(dst, m.Domain)
	dst = append(dst, `,"unicode":`...)
	dst = appendString(dst, m.Unicode)
	dst = append(dst, `,"brand":`...)
	dst = appendString(dst, m.Brand)
	dst = append(dst, `,"ssim":`...)
	dst, err := appendFloat(dst, m.SSIM)
	return append(dst, '}'), err
}

func appendSemantic(dst []byte, m *core.SemanticMatch) []byte {
	dst = append(dst, `{"domain":`...)
	dst = appendString(dst, m.Domain)
	dst = append(dst, `,"unicode":`...)
	dst = appendString(dst, m.Unicode)
	dst = append(dst, `,"brand":`...)
	dst = appendString(dst, m.Brand)
	dst = append(dst, `,"keyword":`...)
	dst = appendString(dst, m.Keyword)
	return append(dst, '}')
}

func appendContribution(dst []byte, c *feat.Contribution) ([]byte, error) {
	dst = append(dst, `{"feature":`...)
	dst = appendString(dst, c.Feature)
	dst = append(dst, `,"value":`...)
	dst, err := appendFloat(dst, c.Value)
	if err != nil {
		return dst, err
	}
	dst = append(dst, `,"impact":`...)
	dst, err = appendFloat(dst, c.Impact)
	return append(dst, '}'), err
}

func appendStatistical(dst []byte, m *core.StatMatch) ([]byte, error) {
	dst = append(dst, `{"domain":`...)
	dst = appendString(dst, m.Domain)
	dst = append(dst, `,"unicode":`...)
	dst = appendString(dst, m.Unicode)
	dst = append(dst, `,"score":`...)
	dst, err := appendFloat(dst, m.Score)
	if err != nil {
		return dst, err
	}
	if len(m.Top) > 0 { // omitempty
		dst = append(dst, `,"top":[`...)
		for i := range m.Top {
			if i > 0 {
				dst = append(dst, ',')
			}
			if dst, err = appendContribution(dst, &m.Top[i]); err != nil {
				return dst, err
			}
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

func appendConfidence(dst []byte, c *core.EnsembleConfidence) ([]byte, error) {
	dst = append(dst, `{"homograph":`...)
	dst, err := appendFloat(dst, c.Homograph)
	if err != nil {
		return dst, err
	}
	dst = append(dst, `,"semantic":`...)
	if dst, err = appendFloat(dst, c.Semantic); err != nil {
		return dst, err
	}
	dst = append(dst, `,"statistical":`...)
	dst, err = appendFloat(dst, c.Statistical)
	return append(dst, '}'), err
}

// AppendDetectResponse appends r's JSON encoding to dst — the embedded
// core.Verdict fields first (Verdict field order is pinned by the
// serving layer's golden tests), then the response envelope.
func AppendDetectResponse(dst []byte, r *DetectResponse) ([]byte, error) {
	var err error
	dst = append(dst, `{"domain":`...)
	dst = appendString(dst, r.Domain)
	dst = append(dst, `,"unicode":`...)
	dst = appendString(dst, r.Unicode)
	dst = append(dst, `,"idn":`...)
	dst = appendBool(dst, r.IDN)
	if r.Homograph != nil {
		dst = append(dst, `,"homograph":`...)
		if dst, err = appendHomograph(dst, r.Homograph); err != nil {
			return dst, err
		}
	}
	if r.Semantic != nil {
		dst = append(dst, `,"semantic":`...)
		dst = appendSemantic(dst, r.Semantic)
	}
	if r.Statistical != nil {
		dst = append(dst, `,"statistical":`...)
		if dst, err = appendStatistical(dst, r.Statistical); err != nil {
			return dst, err
		}
	}
	if r.Confidence != nil {
		dst = append(dst, `,"confidence":`...)
		if dst, err = appendConfidence(dst, r.Confidence); err != nil {
			return dst, err
		}
	}
	if r.Suspicion != "" {
		dst = append(dst, `,"suspicion":`...)
		dst = appendString(dst, r.Suspicion)
	}
	dst = append(dst, `,"flagged":`...)
	dst = appendBool(dst, r.Flagged)
	dst = append(dst, `,"cached":`...)
	dst = appendBool(dst, r.Cached)
	if r.Input != "" {
		dst = append(dst, `,"input":`...)
		dst = appendString(dst, r.Input)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendString(dst, r.Error)
	}
	return append(dst, '}'), nil
}

// AppendBatchResponse appends r's JSON encoding to dst. A nil Results
// slice encodes as null, matching encoding/json.
func AppendBatchResponse(dst []byte, r *BatchResponse) ([]byte, error) {
	dst = append(dst, `{"count":`...)
	dst = strconv.AppendInt(dst, int64(r.Count), 10)
	dst = append(dst, `,"flagged":`...)
	dst = strconv.AppendInt(dst, int64(r.Flagged), 10)
	dst = append(dst, `,"results":`...)
	if r.Results == nil {
		return append(append(dst, "null"...), '}'), nil
	}
	dst = append(dst, '[')
	var err error
	for i := range r.Results {
		if i > 0 {
			dst = append(dst, ',')
		}
		if dst, err = AppendDetectResponse(dst, &r.Results[i]); err != nil {
			return dst, err
		}
	}
	return append(dst, ']', '}'), nil
}

// Buf is a pooled scratch buffer for the append codec. Get one with
// GetBuf, encode into B, and return it with PutBuf when the encoded
// bytes are no longer referenced. Ownership rule: PutBuf hands the
// backing array to the next GetBuf caller — never retain B (or any
// slice of it) past PutBuf, and never PutBuf a buffer whose bytes were
// handed to an API that may read them after returning (hedged upstream
// requests, for example, keep plain allocations for exactly that
// reason).
type Buf struct{ B []byte }

// maxPooledBuf caps what Put returns to the pool so one giant batch
// body cannot pin megabytes in every P's pool shard.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf returns a scratch buffer with len(B) == 0.
func GetBuf() *Buf { return bufPool.Get().(*Buf) }

// PutBuf returns b to the pool (oversized buffers are dropped for GC).
func PutBuf(b *Buf) {
	if cap(b.B) > maxPooledBuf {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

// writeEncoded writes pre-encoded JSON exactly as WriteJSON would have:
// same Content-Type, same status, and the trailing newline
// json.Encoder.Encode appends (the serving layer's golden tests pin it).
func writeEncoded(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// WriteDetect writes r as the response body through the append codec,
// byte-identical to WriteJSON(w, code, r). The non-finite-float
// fallback defers to the stdlib path, which fails the same way
// json.Encoder does: headers sent, no body.
func WriteDetect(w http.ResponseWriter, code int, r *DetectResponse) {
	buf := GetBuf()
	b, err := AppendDetectResponse(buf.B[:0], r)
	if err != nil {
		PutBuf(buf)
		WriteJSON(w, code, r)
		return
	}
	b = append(b, '\n')
	writeEncoded(w, code, b)
	buf.B = b
	PutBuf(buf)
}

// WriteBatch writes r as the response body through the append codec,
// byte-identical to WriteJSON(w, code, r).
func WriteBatch(w http.ResponseWriter, code int, r *BatchResponse) {
	buf := GetBuf()
	b, err := AppendBatchResponse(buf.B[:0], r)
	if err != nil {
		PutBuf(buf)
		WriteJSON(w, code, r)
		return
	}
	b = append(b, '\n')
	writeEncoded(w, code, b)
	buf.B = b
	PutBuf(buf)
}
