// Package idna implements Internationalizing Domain Names in Applications
// (IDNA): whole-domain conversion between Unicode form and the
// ASCII-compatible encoding (ACE) form used on the wire, per RFC 3490 and
// the registration flow described in the paper's §II. Labels containing
// non-ASCII code points are Punycode-encoded (package punycode) and prefixed
// with "xn--"; ASCII labels pass through after case folding and validation.
package idna

import (
	"errors"
	"fmt"
	"strings"

	"idnlab/internal/punycode"
)

// ACEPrefix is the ASCII-compatible-encoding prefix prepended to
// Punycode-encoded labels (RFC 3490 §5).
const ACEPrefix = "xn--"

// DNS length limits (RFC 1035).
const (
	maxLabelLength  = 63
	maxDomainLength = 253
)

// Errors returned by the conversion functions.
var (
	// ErrEmptyLabel reports an empty label (consecutive or leading dots).
	ErrEmptyLabel = errors.New("idna: empty label")
	// ErrLabelTooLong reports an encoded label exceeding 63 octets.
	ErrLabelTooLong = errors.New("idna: label exceeds 63 octets")
	// ErrDomainTooLong reports an encoded domain exceeding 253 octets.
	ErrDomainTooLong = errors.New("idna: domain exceeds 253 octets")
	// ErrBadLabel reports a label violating LDH/hyphen placement rules.
	ErrBadLabel = errors.New("idna: invalid label")
	// ErrDisallowedRune reports a code point forbidden in domain labels.
	ErrDisallowedRune = errors.New("idna: disallowed code point")
)

// foldRune lower-cases ASCII letters; other code points are returned
// unchanged. Full Unicode case folding (Nameprep) is out of scope: the
// paper's corpus comes from zone files, which are already folded.
func foldRune(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

// fold lower-cases the ASCII letters of s.
func fold(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		b.WriteRune(foldRune(r))
	}
	return b.String()
}

// validateRunes rejects code points that may never appear in a label:
// controls, spaces, and the label separator itself.
func validateRunes(label string) error {
	for _, r := range label {
		switch {
		case r < 0x21: // controls and space
			return fmt.Errorf("%w: U+%04X", ErrDisallowedRune, r)
		case r == '.' || r == '/' || r == '\\' || r == '@' || r == ':':
			return fmt.Errorf("%w: %q", ErrDisallowedRune, r)
		case r == 0x7F:
			return fmt.Errorf("%w: U+007F", ErrDisallowedRune)
		}
	}
	return nil
}

// validateHyphens enforces the RFC 5891 hyphen restrictions on an encoded
// (ASCII) label: no leading or trailing hyphen, and no "--" in the third and
// fourth position unless the label carries the ACE prefix.
func validateHyphens(ace string) error {
	if ace == "" {
		return ErrEmptyLabel
	}
	if ace[0] == '-' || ace[len(ace)-1] == '-' {
		return fmt.Errorf("%w: leading or trailing hyphen in %q", ErrBadLabel, ace)
	}
	if len(ace) >= 4 && ace[2] == '-' && ace[3] == '-' && !strings.HasPrefix(ace, ACEPrefix) {
		return fmt.Errorf("%w: hyphens in positions 3-4 of %q", ErrBadLabel, ace)
	}
	return nil
}

// IsACELabel reports whether the (ASCII) label carries the ACE prefix —
// the test the paper uses to extract IDNs from zone files.
func IsACELabel(label string) bool {
	return len(label) > len(ACEPrefix) && strings.EqualFold(label[:len(ACEPrefix)], ACEPrefix)
}

// ToASCIILabel converts a single label to its ACE form. Pure-ASCII labels
// are returned folded and validated; labels with non-ASCII code points are
// Punycode-encoded and prefixed.
func ToASCIILabel(label string) (string, error) {
	label = fold(label)
	if label == "" {
		return "", ErrEmptyLabel
	}
	if err := validateRunes(label); err != nil {
		return "", err
	}
	ascii := true
	for i := 0; i < len(label); i++ {
		if label[i] >= 0x80 {
			ascii = false
			break
		}
	}
	out := label
	if !ascii {
		enc, err := punycode.Encode(label)
		if err != nil {
			return "", fmt.Errorf("idna: encode label: %w", err)
		}
		out = ACEPrefix + enc
	} else if IsACELabel(label) {
		// Already-encoded input: validate it decodes.
		if _, err := punycode.Decode(label[len(ACEPrefix):]); err != nil {
			return "", fmt.Errorf("idna: ACE label %q: %w", label, err)
		}
	}
	if len(out) > maxLabelLength {
		return "", fmt.Errorf("%w: %q (%d octets)", ErrLabelTooLong, out, len(out))
	}
	if err := validateHyphens(out); err != nil {
		return "", err
	}
	return out, nil
}

// ToUnicodeLabel converts a single label to its Unicode form. Labels with
// the ACE prefix are decoded; others are returned folded. A label whose
// decoded form is itself pure ASCII is rejected as a fake ACE label
// ("hyper-encoded" labels are a known squatting trick).
func ToUnicodeLabel(label string) (string, error) {
	label = fold(label)
	if label == "" {
		return "", ErrEmptyLabel
	}
	if !IsACELabel(label) {
		if err := validateRunes(label); err != nil {
			return "", err
		}
		return label, nil
	}
	decoded, err := punycode.Decode(label[len(ACEPrefix):])
	if err != nil {
		return "", fmt.Errorf("idna: decode %q: %w", label, err)
	}
	if err := validateRunes(decoded); err != nil {
		return "", err
	}
	return decoded, nil
}

// ToASCII converts a whole domain name (labels separated by '.') to ACE
// form, validating each label and the overall length. A single trailing dot
// (root) is preserved.
func ToASCII(domain string) (string, error) {
	return mapLabels(domain, ToASCIILabel, true)
}

// ToUnicode converts a whole domain name to Unicode display form. Length
// limits are not enforced on the Unicode form (they apply on the wire).
func ToUnicode(domain string) (string, error) {
	return mapLabels(domain, ToUnicodeLabel, false)
}

// mapLabels applies convert to each label of domain and rejoins.
func mapLabels(domain string, convert func(string) (string, error), enforceLength bool) (string, error) {
	rooted := strings.HasSuffix(domain, ".") && domain != "."
	if rooted {
		domain = domain[:len(domain)-1]
	}
	if domain == "" {
		return "", ErrEmptyLabel
	}
	labels := strings.Split(domain, ".")
	out := make([]string, len(labels))
	for i, label := range labels {
		converted, err := convert(label)
		if err != nil {
			return "", fmt.Errorf("label %d: %w", i+1, err)
		}
		out[i] = converted
	}
	joined := strings.Join(out, ".")
	if enforceLength && len(joined) > maxDomainLength {
		return "", ErrDomainTooLong
	}
	if rooted {
		joined += "."
	}
	return joined, nil
}

// IsIDN reports whether the domain contains at least one internationalized
// label, in either Unicode or ACE form. This is the predicate the zone
// scanner applies to 154M SLDs.
func IsIDN(domain string) bool {
	for i := 0; i < len(domain); i++ {
		if domain[i] >= 0x80 {
			return true
		}
	}
	start := 0
	for i := 0; i <= len(domain); i++ {
		if i == len(domain) || domain[i] == '.' {
			if IsACELabel(domain[start:i]) {
				return true
			}
			start = i + 1
		}
	}
	return false
}

// Label addresses one label of a domain without allocating the split.
// SLD returns the second-level-domain portion ("example.com" for
// "www.example.com") assuming a single-label TLD, which holds for every
// TLD in the corpus (com/net/org and iTLDs).
func SLD(domain string) string {
	domain = strings.TrimSuffix(domain, ".")
	last := strings.LastIndexByte(domain, '.')
	if last < 0 {
		return domain
	}
	prev := strings.LastIndexByte(domain[:last], '.')
	return domain[prev+1:]
}

// TLD returns the top-level-domain label of the domain, without dots.
func TLD(domain string) string {
	domain = strings.TrimSuffix(domain, ".")
	last := strings.LastIndexByte(domain, '.')
	if last < 0 {
		return domain
	}
	return domain[last+1:]
}

// SLDLabel returns the second-level label alone ("example" for
// "www.example.com").
func SLDLabel(domain string) string {
	sld := SLD(domain)
	dot := strings.IndexByte(sld, '.')
	if dot < 0 {
		return sld
	}
	return sld[:dot]
}
