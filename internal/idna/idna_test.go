package idna

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestToASCIIKnownDomains(t *testing.T) {
	cases := []struct {
		unicode string
		ace     string
	}{
		{"波色.com", "xn--0wwy37b.com"},              // paper §IV-C gambling IDN
		{"中国", "xn--fiqs8s"},                       // paper §II iTLD
		{"аpple.com", "xn--pple-43d.com"},          // 2017 attack
		{"example.com", "example.com"},             // ASCII passthrough
		{"EXAMPLE.COM", "example.com"},             // case folding
		{"www.пример.com", "www.xn--e1afmkfd.com"}, // 3-label
		{"日本語.jp", "xn--wgv71a119e.jp"},            // Japanese
		{"한국.kr", "xn--3e0b707e.kr"},               // Korean
		{"bücher.de", "xn--bcher-kva.de"},          // German umlaut
		{"☃.net", "xn--n3h.net"},                   // snowman
		{"xn--pple-43d.com", "xn--pple-43d.com"},   // already encoded
		{"facebook.com.", "facebook.com."},         // rooted
	}
	for _, tc := range cases {
		got, err := ToASCII(tc.unicode)
		if err != nil {
			t.Errorf("ToASCII(%q): %v", tc.unicode, err)
			continue
		}
		if got != tc.ace {
			t.Errorf("ToASCII(%q) = %q, want %q", tc.unicode, got, tc.ace)
		}
	}
}

func TestToUnicodeKnownDomains(t *testing.T) {
	cases := []struct {
		ace     string
		unicode string
	}{
		{"xn--0wwy37b.com", "波色.com"},
		{"xn--fiqs8s", "中国"},
		{"xn--pple-43d.com", "аpple.com"},
		{"example.com", "example.com"},
		{"XN--FIQS8S", "中国"}, // case-insensitive prefix
	}
	for _, tc := range cases {
		got, err := ToUnicode(tc.ace)
		if err != nil {
			t.Errorf("ToUnicode(%q): %v", tc.ace, err)
			continue
		}
		if got != tc.unicode {
			t.Errorf("ToUnicode(%q) = %q, want %q", tc.ace, got, tc.unicode)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	domains := []string{
		"波色.com", "中国", "аpple.com", "日本語.jp", "한국.kr",
		"apple邮箱.com", "58汽车.com", "格力空调.net", "北京交通大学.com",
	}
	for _, d := range domains {
		ace, err := ToASCII(d)
		if err != nil {
			t.Fatalf("ToASCII(%q): %v", d, err)
		}
		uni, err := ToUnicode(ace)
		if err != nil {
			t.Fatalf("ToUnicode(%q): %v", ace, err)
		}
		if uni != d {
			t.Errorf("round trip %q -> %q -> %q", d, ace, uni)
		}
	}
}

func TestToUnicodeIdempotent(t *testing.T) {
	for _, d := range []string{"波色.com", "example.com", "аpple.com"} {
		once, err := ToUnicode(d)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := ToUnicode(once)
		if err != nil {
			t.Fatal(err)
		}
		if once != twice {
			t.Errorf("ToUnicode not idempotent: %q vs %q", once, twice)
		}
	}
}

func TestToASCIIErrors(t *testing.T) {
	cases := []struct {
		name   string
		domain string
		want   error
	}{
		{"empty", "", ErrEmptyLabel},
		{"double-dot", "a..com", ErrEmptyLabel},
		{"leading-dot", ".com", ErrEmptyLabel},
		{"leading-hyphen", "-abc.com", ErrBadLabel},
		{"trailing-hyphen", "abc-.com", ErrBadLabel},
		{"fake-double-hyphen", "ab--cd.com", ErrBadLabel},
		{"space", "a b.com", ErrDisallowedRune},
		{"control", "a\x01b.com", ErrDisallowedRune},
		{"label-too-long", strings.Repeat("a", 64) + ".com", ErrLabelTooLong},
		{"domain-too-long", strings.Repeat(strings.Repeat("a", 60)+".", 5) + "com", ErrDomainTooLong},
		{"bad-ace", "xn--!!!.com", nil}, // any error acceptable
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ToASCII(tc.domain)
			if err == nil {
				t.Fatalf("ToASCII(%q) succeeded", tc.domain)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestToASCIIEncodedLabelLengthEnforced(t *testing.T) {
	// Widely-spread Han characters have large Bootstring deltas, so 40 of
	// them encode far beyond 63 octets. (A repeated single character would
	// not: its deltas are zero — that compactness is itself a Bootstring
	// property worth pinning here.)
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteRune(rune(0x4E00 + i*251))
	}
	long := b.String() + ".com"
	if _, err := ToASCII(long); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("err = %v, want ErrLabelTooLong", err)
	}
}

func TestIsACELabel(t *testing.T) {
	cases := []struct {
		label string
		want  bool
	}{
		{"xn--fiqs8s", true},
		{"XN--FIQS8S", true},
		{"xn--", false}, // prefix alone is not an IDN label
		{"xn-a", false},
		{"example", false},
		{"xnot", false},
	}
	for _, tc := range cases {
		if got := IsACELabel(tc.label); got != tc.want {
			t.Errorf("IsACELabel(%q) = %v, want %v", tc.label, got, tc.want)
		}
	}
}

func TestIsIDN(t *testing.T) {
	cases := []struct {
		domain string
		want   bool
	}{
		{"example.com", false},
		{"xn--0wwy37b.com", true},
		{"波色.com", true},
		{"www.xn--fiqs8s", true},
		{"sub.example.xn--fiqs8s", true},
		{"xnot.com", false},
		{"a.xn--b", false}, // xn-- alone with one char... actually xn--b is ACE
	}
	// fix expectation: "xn--b" has length 5 > 4, so it is ACE-shaped.
	cases[len(cases)-1].want = true
	for _, tc := range cases {
		if got := IsIDN(tc.domain); got != tc.want {
			t.Errorf("IsIDN(%q) = %v, want %v", tc.domain, got, tc.want)
		}
	}
}

func TestSLDAndTLD(t *testing.T) {
	cases := []struct {
		domain   string
		sld      string
		tld      string
		sldLabel string
	}{
		{"www.example.com", "example.com", "com", "example"},
		{"example.com", "example.com", "com", "example"},
		{"com", "com", "com", "com"},
		{"a.b.c.example.org", "example.org", "org", "example"},
		{"xn--0wwy37b.com.", "xn--0wwy37b.com", "com", "xn--0wwy37b"},
	}
	for _, tc := range cases {
		if got := SLD(tc.domain); got != tc.sld {
			t.Errorf("SLD(%q) = %q, want %q", tc.domain, got, tc.sld)
		}
		if got := TLD(tc.domain); got != tc.tld {
			t.Errorf("TLD(%q) = %q, want %q", tc.domain, got, tc.tld)
		}
		if got := SLDLabel(tc.domain); got != tc.sldLabel {
			t.Errorf("SLDLabel(%q) = %q, want %q", tc.domain, got, tc.sldLabel)
		}
	}
}

func TestToASCIIQuickProperty(t *testing.T) {
	// For any successfully converted domain, the output is pure ASCII,
	// within DNS limits, and ToUnicode(ToASCII(x)) round-trips to a form
	// that re-encodes identically.
	f := func(raw []uint16) bool {
		runes := make([]rune, 0, len(raw))
		for _, v := range raw {
			r := rune(v)
			if r < 0x21 || (r >= 0xD800 && r <= 0xDFFF) || r == '.' {
				continue
			}
			runes = append(runes, r)
		}
		if len(runes) == 0 || len(runes) > 20 {
			return true
		}
		domain := string(runes) + ".com"
		ace, err := ToASCII(domain)
		if err != nil {
			return true // invalid inputs may be rejected
		}
		for i := 0; i < len(ace); i++ {
			if ace[i] >= 0x80 {
				return false
			}
		}
		if len(ace) > 253 {
			return false
		}
		uni, err := ToUnicode(ace)
		if err != nil {
			return false
		}
		ace2, err := ToASCII(uni)
		return err == nil && ace2 == ace
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkToASCIIIDN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ToASCII("北京交通大学.com"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIsIDNScan(b *testing.B) {
	domains := []string{"example.com", "xn--0wwy37b.com", "another-name.net", "xn--fiqs8s"}
	for i := 0; i < b.N; i++ {
		_ = IsIDN(domains[i%len(domains)])
	}
}

func TestNameprep(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"google", "google"},
		{"GOOGLE", "google"},
		{"ｇｏｏｇｌｅ", "google"},  // fullwidth folds to ASCII
		{"ＧＯＯＧＬＥ", "google"},  // fullwidth uppercase
		{"goo​gle", "google"}, // zero width space stripped
		{"go‍ogle", "google"}, // zero width joiner stripped
		{"中国", "中国"},          // CJK unchanged
		{"５８", "58"},          // fullwidth digits
	}
	for _, tc := range cases {
		got, err := Nameprep(tc.in)
		if err != nil {
			t.Errorf("Nameprep(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Nameprep(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNameprepEmptyAfterStrip(t *testing.T) {
	if _, err := Nameprep("​‍"); err == nil {
		t.Error("all-invisible label should be rejected")
	}
}

func TestNameprepIdempotent(t *testing.T) {
	for _, in := range []string{"google", "ｇｏｏｇｌｅ", "中国", "bücher"} {
		once, err := Nameprep(in)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Nameprep(once)
		if err != nil {
			t.Fatal(err)
		}
		if once != twice {
			t.Errorf("Nameprep not idempotent on %q: %q vs %q", in, once, twice)
		}
	}
}
