package idna

import (
	"fmt"
	"strings"
)

// Nameprep-style mapping (RFC 3491, reduced to the operations relevant to
// modern registries): width folding of fullwidth forms, ASCII case
// folding, and removal of zero-width code points. Registries apply this
// before validation, which is why a fullwidth "ｇｏｏｇｌｅ" cannot be
// registered as a distinct name from "google" — the mapping collapses
// them. The paper's §II registration flow runs through exactly this step
// inside the SRS.

// zero-width and invisible code points stripped by the mapping.
var strippedRunes = map[rune]bool{
	0x00AD: true, // soft hyphen
	0x200B: true, // zero width space
	0x200C: true, // zero width non-joiner
	0x200D: true, // zero width joiner
	0x2060: true, // word joiner
	0xFEFF: true, // zero width no-break space
}

// Nameprep applies the mapping to a single label: fullwidth forms fold to
// their ASCII counterparts, ASCII uppercase folds to lowercase, and
// invisible code points are removed. It returns an error when the result
// is empty (a label made only of invisible characters is an attack shape,
// not a name).
func Nameprep(label string) (string, error) {
	var b strings.Builder
	b.Grow(len(label))
	for _, r := range label {
		if strippedRunes[r] {
			continue
		}
		switch {
		case r >= 'A' && r <= 'Z':
			r += 'a' - 'A'
		case r >= 0xFF01 && r <= 0xFF5E:
			// Fullwidth ASCII block folds by fixed offset.
			r -= 0xFEE0
			if r >= 'A' && r <= 'Z' {
				r += 'a' - 'A'
			}
		case r == 0x3000:
			// Ideographic space maps to space, which validation rejects
			// downstream; keep the mapping faithful.
			r = ' '
		}
		b.WriteRune(r)
	}
	out := b.String()
	if out == "" {
		return "", fmt.Errorf("%w: label empty after nameprep", ErrBadLabel)
	}
	return out, nil
}
