package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// double is the trivial fn used by most tests: no worker state, item*2.
func double() *Engine[int, int, struct{}] {
	return New(Config{Stage: "double", Workers: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) { return 2 * n, true, nil })
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCollectPreservesOrder(t *testing.T) {
	// Random per-item delays make out-of-order completion certain; the
	// fan-in must still deliver input order.
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 200)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	eng := New(Config{Workers: 8},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			time.Sleep(delays[n])
			return n, true, nil
		})
	out, err := eng.Collect(context.Background(), FromSlice(ints(len(delays))))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(delays) {
		t.Fatalf("len = %d, want %d", len(out), len(delays))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d: order not preserved", i, v)
		}
	}
}

func TestCollectEdgeSizes(t *testing.T) {
	// Sizes 0, 1 and len < workers — the shapes that broke the old
	// chunked DetectParallel sharding.
	for _, n := range []int{0, 1, 2, 3} {
		out, err := double().Collect(context.Background(), FromSlice(ints(n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
		for i, v := range out {
			if v != 2*i {
				t.Fatalf("n=%d: out[%d] = %d", n, i, v)
			}
		}
	}
}

func TestFilterDropsButKeepsOrder(t *testing.T) {
	eng := New(Config{Workers: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) { return n, n%3 == 0, nil })
	out, err := eng.Collect(context.Background(), FromSlice(ints(100)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 3*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 3*i)
		}
	}
	m := eng.Metrics()
	if m.In != 100 || m.Out != 34 {
		t.Fatalf("metrics in=%d out=%d, want 100/34", m.In, m.Out)
	}
}

func TestLazyWorkerConstruction(t *testing.T) {
	// 16 workers, 2 items: at most 2 worker states may be built.
	var built atomic.Int32
	eng := New(Config{Workers: 16},
		func() int { built.Add(1); return 0 },
		func(_ int, n int) (int, bool, error) { return n, true, nil })
	if _, err := eng.Collect(context.Background(), FromSlice(ints(2))); err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b > 2 {
		t.Fatalf("built %d worker states for 2 items", b)
	}
}

func TestFuncErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	eng := New(Config{Workers: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			if n == 17 {
				return 0, false, boom
			}
			return n, true, nil
		})
	_, err := eng.Collect(context.Background(), FromSlice(ints(1000)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if m := eng.Metrics(); m.Errors != 1 {
		t.Fatalf("errors = %d, want 1", m.Errors)
	}
}

func TestSinkErrorAborts(t *testing.T) {
	stop := errors.New("stop")
	err := double().Stream(context.Background(), FromSlice(ints(1000)), func(n int) error {
		if n >= 20 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
}

func TestSourceErrorAborts(t *testing.T) {
	srcErr := errors.New("bad source")
	src := Source[int](func(ctx context.Context, emit func(int) error) error {
		for i := 0; i < 5; i++ {
			if err := emit(i); err != nil {
				return err
			}
		}
		return srcErr
	})
	_, err := double().Collect(context.Background(), src)
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v, want source error", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := double().Collect(ctx, FromSlice(ints(100)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancellationMidScanDrains cancels deterministically from inside a
// Func call and asserts ctx.Err() comes back and every goroutine drains.
func TestCancellationMidScanDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var processed atomic.Int64
	eng := New(Config{Workers: 6, Buffer: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			if processed.Add(1) == 10 {
				cancel() // cancel mid-corpus, deterministically
			}
			return n, true, nil
		})
	_, err := eng.Collect(ctx, FromSlice(ints(100000)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p := processed.Load(); p >= 100000 {
		t.Fatalf("cancellation did not stop the scan (processed %d)", p)
	}
	assertNoLeakedGoroutines(t, before)
}

// TestFromChanCancellation covers the streaming-input path: a channel
// source that never closes must still unblock on cancellation.
func TestFromChanCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan int) // never closed, never written
	done := make(chan error, 1)
	go func() {
		_, err := double().Collect(ctx, FromChan(ch))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not unblock on cancellation")
	}
	assertNoLeakedGoroutines(t, before)
}

func TestFromChanDelivers(t *testing.T) {
	ch := make(chan int, 8)
	go func() {
		for i := 0; i < 50; i++ {
			ch <- i
		}
		close(ch)
	}()
	out, err := double().Collect(context.Background(), FromChan(ch))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 || out[49] != 98 {
		t.Fatalf("out = %d items, last %d", len(out), out[len(out)-1])
	}
}

func TestMetricsCounters(t *testing.T) {
	eng := New(Config{Stage: "m", Workers: 3},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			time.Sleep(50 * time.Microsecond)
			return n, true, nil
		})
	if _, err := eng.Collect(context.Background(), FromSlice(ints(30))); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Stage != "m" || m.Workers != 3 {
		t.Fatalf("identity: %+v", m)
	}
	if m.In != 30 || m.Out != 30 || m.Errors != 0 {
		t.Fatalf("counters: %+v", m)
	}
	if m.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", m.Elapsed)
	}
	var busy time.Duration
	for _, b := range m.Busy {
		busy += b
	}
	if busy <= 0 {
		t.Fatalf("busy = %v", busy)
	}
	if m.Throughput() <= 0 {
		t.Fatalf("throughput = %f", m.Throughput())
	}
	if u := m.Utilization(); u <= 0 || u > 1.0 {
		t.Fatalf("utilization = %f", u)
	}
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
	// Second run accumulates; Sub meters the delta.
	prev := m
	if _, err := eng.Collect(context.Background(), FromSlice(ints(10))); err != nil {
		t.Fatal(err)
	}
	d := eng.Metrics().Sub(prev)
	if d.In != 10 || d.Out != 10 {
		t.Fatalf("delta: %+v", d)
	}
}

func TestDefaultsResolve(t *testing.T) {
	eng := New(Config{},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) { return n, true, nil })
	if eng.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS", eng.Workers())
	}
	if m := eng.Metrics(); m.Stage != "scan" {
		t.Fatalf("stage = %q, want default", m.Stage)
	}
}

// assertNoLeakedGoroutines retries until the goroutine count settles at
// or below the baseline (with slack for runtime background goroutines).
func assertNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after settle", before, now)
}

// TestBacklogGauge: while workers are gated, the backlog gauge shows the
// items accepted but not yet consumed; once the gate opens and the scan
// completes, the backlog returns to exactly zero.
func TestBacklogGauge(t *testing.T) {
	gate := make(chan struct{})
	var entered atomic.Int32
	eng := New(Config{Stage: "gated", Workers: 2, Batch: 1, Buffer: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			entered.Add(1)
			<-gate
			return n, true, nil
		})

	done := make(chan error, 1)
	go func() {
		_, err := eng.Collect(context.Background(), FromSlice(ints(32)))
		done <- err
	}()

	// Wait until both workers are parked inside Func and the buffered
	// queue behind them has filled.
	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() < 2 || eng.Metrics().Backlog() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never built up: entered=%d metrics=%+v", entered.Load(), eng.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
	m := eng.Metrics()
	if m.Backlog() == 0 || m.Consumed > m.In {
		t.Fatalf("mid-scan snapshot inconsistent: %+v", m)
	}
	if j := m.JSON(); j.Backlog != m.Backlog() {
		t.Fatalf("JSON backlog %d != %d", j.Backlog, m.Backlog())
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Collect: %v", err)
	}
	m = eng.Metrics()
	if m.Backlog() != 0 {
		t.Fatalf("backlog after completion = %d, want 0 (in=%d consumed=%d)", m.Backlog(), m.In, m.Consumed)
	}
	if m.In != 32 || m.Consumed != 32 {
		t.Fatalf("in=%d consumed=%d, want 32/32", m.In, m.Consumed)
	}
}

// TestBacklogDrainsOnCancel: cancellation mid-scan must still account
// every accepted item as consumed via the drain path, so the gauge does
// not stick at a nonzero value after an aborted run.
func TestBacklogDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(Config{Stage: "cancelled", Workers: 2, Batch: 1, Buffer: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, n int) (int, bool, error) {
			if n == 3 {
				cancel()
			}
			return n, true, nil
		})
	_, err := eng.Collect(ctx, FromSlice(ints(1000)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m := eng.Metrics(); m.Backlog() != 0 {
		t.Fatalf("backlog after cancelled run = %d (in=%d consumed=%d), want 0", m.Backlog(), m.In, m.Consumed)
	}
}
