// Package pipeline is a generic, context-aware streaming scan engine:
// a bounded input channel feeds a sharded worker fan-out (one private
// state value per worker, built lazily on first use) whose results are
// re-assembled by an order-preserving fan-in. Every stage keeps counters
// — items in/out, errors, per-worker busy time — exposed as a Metrics
// snapshot, so corpus scans report where time goes.
//
// The engine exists because the paper's brute-force homograph sweep took
// 102 hours on one machine (§VI-B): every corpus-scale scan in this
// repository (homograph, semantic, zone ingestion) is embarrassingly
// parallel but was previously sequential, fully in-memory, and
// unobservable. Items are distributed one at a time, never in precomputed
// shards, so workers stay busy regardless of corpus size versus worker
// count (the failure mode of the deprecated core.DetectParallel chunking,
// where workers > len(corpus)/chunk left workers idle).
//
// Ordering guarantee: results are delivered to the sink in input order,
// regardless of which worker produced them or how long it took. A scan
// through the engine is therefore a pure speedup of the sequential loop:
// same results, same order.
//
// Cancellation guarantee: when the caller's context is cancelled
// mid-corpus, Stream/Collect return ctx.Err() after draining — the
// feeder stops, workers finish or skip their current item, and every
// goroutine exits before the call returns. No goroutines leak.
//
// Beyond corpus scans, the serving tiers reuse the same engine: the
// online service fans batch requests out across detector clones
// (internal/serve), and the cluster gateway scatter/gathers per-owner
// sub-batches with Batch:1 — each item one network round-trip — relying
// on the ordering guarantee to reassemble responses at their original
// request indices (internal/cluster).
package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// DefaultBatch is the dispatch granularity when Config.Batch is unset:
// items are handed to workers in groups of this size, amortizing channel
// overhead for cheap per-item work (a µs-scale detector call costs less
// than the channel handoff would item by item).
const DefaultBatch = 32

// Config parameterizes an Engine.
type Config struct {
	// Stage names the engine in metrics output, e.g. "homograph".
	Stage string
	// Workers is the fan-out width; <= 0 selects GOMAXPROCS.
	Workers int
	// Buffer bounds the input and output channels in batches
	// (backpressure); <= 0 selects 2×Workers.
	Buffer int
	// Batch is how many items a worker receives per dispatch; <= 0
	// selects DefaultBatch. Use 1 when each item is itself heavy (a
	// whole zone file, a network probe) so the fan-out stays fine-
	// grained. Batching never affects output order.
	Batch int
}

// Source produces the input stream. It must call emit for every item in
// order and return emit's error unchanged if emit fails (emit fails only
// on cancellation). Sources are pull-agnostic: a slice, a channel, a
// zone-file scanner — anything that can push items.
type Source[T any] func(ctx context.Context, emit func(T) error) error

// FromSlice adapts a slice to a Source.
func FromSlice[T any](items []T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for _, item := range items {
			if err := emit(item); err != nil {
				return err
			}
		}
		return nil
	}
}

// FromChan adapts a channel to a Source. The stream ends when the
// channel closes.
func FromChan[T any](ch <-chan T) Source[T] {
	return func(ctx context.Context, emit func(T) error) error {
		for {
			select {
			case item, ok := <-ch:
				if !ok {
					return nil
				}
				if err := emit(item); err != nil {
					return err
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// Func processes one item with per-worker state W. Returning ok=false
// drops the item from the output stream (a filter); returning a non-nil
// error aborts the whole run with that error.
type Func[T, R, W any] func(w W, item T) (R, bool, error)

// Engine is a reusable streaming scan stage. The zero value is not
// usable; build with New. An Engine may run many scans; its metrics
// accumulate across runs (snapshot before/after to meter one run).
type Engine[T, R, W any] struct {
	cfg       Config
	workers   int
	buffer    int
	batch     int
	newWorker func() W
	fn        Func[T, R, W]

	m *meter
}

// New builds an engine. newWorker constructs one private state value per
// worker — detectors that are not safe for concurrent use (the homograph
// renderer keeps a glyph cache) get one instance each. Construction is
// lazy: a worker that never receives an item never builds its state, so
// oversized worker counts on tiny corpora cost goroutines, not
// detectors.
func New[T, R, W any](cfg Config, newWorker func() W, fn Func[T, R, W]) *Engine[T, R, W] {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = 2 * workers
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Engine[T, R, W]{
		cfg:       cfg,
		workers:   workers,
		buffer:    buffer,
		batch:     batch,
		newWorker: newWorker,
		fn:        fn,
		m:         newMeter(cfg.Stage, workers),
	}
}

// Workers reports the resolved fan-out width.
func (e *Engine[T, R, W]) Workers() int { return e.workers }

// Metrics snapshots the engine's counters. Safe to call concurrently
// with a running scan; counts accumulate across scans.
func (e *Engine[T, R, W]) Metrics() Metrics { return e.m.snapshot() }

// job and result carry the sequence number of their first item so the
// fan-in can restore input order no matter which worker finishes first.
// Items travel in small batches to amortize channel overhead; results
// keep only the items the Func retained, in batch order, plus the count
// of items consumed so the fan-in can advance its cursor.
type job[T any] struct {
	seq   uint64
	items []T
}

type result[R any] struct {
	seq  uint64
	n    int // input items consumed
	vals []R // retained results, in input order
}

// Stream runs the scan, delivering results to sink in input order. It
// returns the first error among: a Func error, a sink error, the
// source's own error, or ctx.Err() on cancellation. On any error the
// pipeline drains fully before returning — no goroutine outlives the
// call.
func (e *Engine[T, R, W]) Stream(ctx context.Context, src Source[T], sink func(R) error) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	jobs := make(chan job[T], e.buffer)
	results := make(chan result[R], e.buffer)

	start := time.Now()
	defer func() { e.m.addElapsed(time.Since(start)) }()

	// Feeder: sequence, batch and bound the input.
	go func() {
		defer close(jobs)
		var seq uint64
		batch := make([]T, 0, e.batch)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			j := job[T]{seq: seq, items: batch}
			select {
			case jobs <- j:
				seq += uint64(len(batch))
				e.m.in.Add(uint64(len(batch)))
				batch = make([]T, 0, e.batch)
				return nil
			case <-runCtx.Done():
				return runCtx.Err()
			}
		}
		err := src(runCtx, func(item T) error {
			batch = append(batch, item)
			if len(batch) < e.batch {
				return nil
			}
			return flush()
		})
		if err == nil {
			err = flush()
		}
		if err != nil && err != runCtx.Err() {
			// A genuine source failure, not our own cancellation
			// echoed back.
			fail(err)
		}
	}()

	// Workers: private lazily-built state, one batch at a time.
	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var (
				state W
				built bool
			)
			for j := range jobs {
				if runCtx.Err() != nil {
					// Drain without processing — still counted as
					// consumed so the backlog gauge returns to zero
					// after cancellation.
					e.m.consumed.Add(uint64(len(j.items)))
					continue
				}
				if !built {
					state = e.newWorker()
					built = true
				}
				t0 := time.Now()
				vals := make([]R, 0, len(j.items))
				aborted := false
				for _, item := range j.items {
					if runCtx.Err() != nil {
						aborted = true
						break
					}
					val, ok, err := e.fn(state, item)
					if err != nil {
						e.m.errors.Add(1)
						fail(err)
						aborted = true
						break
					}
					if ok {
						vals = append(vals, val)
					}
				}
				e.m.addBusy(id, time.Since(t0))
				e.m.consumed.Add(uint64(len(j.items)))
				if aborted {
					continue
				}
				select {
				case results <- result[R]{seq: j.seq, n: len(j.items), vals: vals}:
				case <-runCtx.Done():
				}
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Fan-in: restore input order. pending holds at most
	// buffer+workers in-flight batches, so memory stays bounded by
	// configuration, not corpus size.
	pending := make(map[uint64]result[R], e.buffer)
	var next uint64
	sinkDead := false
	for r := range results {
		pending[r.seq] = r
		for {
			p, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			next += uint64(p.n)
			for _, v := range p.vals {
				if sinkDead {
					break
				}
				if err := sink(v); err != nil {
					sinkDead = true
					fail(err)
					break
				}
				e.m.out.Add(1)
			}
		}
	}

	errOnce.Do(func() {}) // seal firstErr
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// Collect runs the scan and gathers all results, in input order, into a
// slice.
func (e *Engine[T, R, W]) Collect(ctx context.Context, src Source[T]) ([]R, error) {
	var out []R
	if err := e.Stream(ctx, src, func(r R) error {
		out = append(out, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
