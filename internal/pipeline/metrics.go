package pipeline

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Metrics is a point-in-time snapshot of one engine's counters. Counts
// accumulate over the engine's lifetime; subtract two snapshots to meter
// a single scan.
type Metrics struct {
	// Stage is the configured stage name.
	Stage string
	// Workers is the resolved fan-out width.
	Workers int
	// In counts items accepted from the source.
	In uint64
	// Out counts results delivered to the sink (post-filter).
	Out uint64
	// Errors counts Func invocations that returned an error.
	Errors uint64
	// Consumed counts items workers have finished with (processed,
	// skipped on abort, or drained after cancellation). In − Consumed is
	// the live backlog: items accepted from the source but not yet
	// through a worker.
	Consumed uint64
	// Elapsed is the total wall time spent inside Stream/Collect.
	Elapsed time.Duration
	// Busy is the per-worker time spent inside Func calls.
	Busy []time.Duration
}

// Backlog reports the queue depth at snapshot time: items accepted from
// the source that no worker has finished with yet (buffered batches plus
// items inside in-flight Func calls). A persistently high backlog on a
// streaming stage means the workers, not the source, are the bottleneck
// — the signal the watch tier uses for backpressure visibility.
func (m Metrics) Backlog() uint64 {
	if m.Consumed > m.In {
		return 0
	}
	return m.In - m.Consumed
}

// Throughput reports input items per second of wall time.
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.In) / m.Elapsed.Seconds()
}

// Utilization reports the mean fraction of wall time the workers spent
// processing items — 1.0 means every worker was busy the whole scan,
// low values point at input starvation or fan-in backpressure.
func (m Metrics) Utilization() float64 {
	if m.Elapsed <= 0 || m.Workers == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range m.Busy {
		busy += b
	}
	return busy.Seconds() / (m.Elapsed.Seconds() * float64(m.Workers))
}

// Sub returns the delta m−prev, for metering one scan of a reused
// engine.
func (m Metrics) Sub(prev Metrics) Metrics {
	d := m
	d.In -= prev.In
	d.Out -= prev.Out
	d.Errors -= prev.Errors
	d.Consumed -= prev.Consumed
	d.Elapsed -= prev.Elapsed
	d.Busy = make([]time.Duration, len(m.Busy))
	for i := range m.Busy {
		d.Busy[i] = m.Busy[i]
		if i < len(prev.Busy) {
			d.Busy[i] -= prev.Busy[i]
		}
	}
	return d
}

// MetricsJSON is the wire form of a Metrics snapshot, used by the online
// serving layer's /metrics endpoint. Busy times are folded into the
// derived utilization figure rather than shipped per worker.
type MetricsJSON struct {
	Stage            string  `json:"stage"`
	Workers          int     `json:"workers"`
	In               uint64  `json:"in"`
	Out              uint64  `json:"out"`
	Errors           uint64  `json:"errors"`
	Backlog          uint64  `json:"backlog"`
	ElapsedMillis    float64 `json:"elapsedMillis"`
	ThroughputPerSec float64 `json:"throughputPerSec"`
	Utilization      float64 `json:"utilization"`
}

// JSON converts the snapshot to its wire form.
func (m Metrics) JSON() MetricsJSON {
	return MetricsJSON{
		Stage:            m.Stage,
		Workers:          m.Workers,
		In:               m.In,
		Out:              m.Out,
		Errors:           m.Errors,
		Backlog:          m.Backlog(),
		ElapsedMillis:    float64(m.Elapsed) / float64(time.Millisecond),
		ThroughputPerSec: m.Throughput(),
		Utilization:      m.Utilization(),
	}
}

// String renders a one-line summary for -metrics output.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stage=%s workers=%d in=%d out=%d errors=%d backlog=%d elapsed=%s throughput=%.0f/s utilization=%.0f%%",
		m.Stage, m.Workers, m.In, m.Out, m.Errors, m.Backlog(),
		m.Elapsed.Round(time.Millisecond), m.Throughput(), 100*m.Utilization())
	return sb.String()
}

// meter holds the engine's live counters. All fields are updated with
// atomics so Metrics() is safe during a scan.
type meter struct {
	stage   string
	workers int
	in       atomic.Uint64
	out      atomic.Uint64
	errors   atomic.Uint64
	consumed atomic.Uint64
	elapsed atomic.Int64 // nanoseconds
	busy    []atomic.Int64
}

func newMeter(stage string, workers int) *meter {
	if stage == "" {
		stage = "scan"
	}
	return &meter{stage: stage, workers: workers, busy: make([]atomic.Int64, workers)}
}

func (m *meter) addBusy(worker int, d time.Duration) {
	m.busy[worker].Add(int64(d))
}

func (m *meter) addElapsed(d time.Duration) {
	m.elapsed.Add(int64(d))
}

func (m *meter) snapshot() Metrics {
	// consumed is read before in: it only ever trails in, so this order
	// guarantees the snapshot never shows Consumed > In mid-scan.
	consumed := m.consumed.Load()
	s := Metrics{
		Stage:    m.stage,
		Workers:  m.workers,
		Consumed: consumed,
		In:       m.in.Load(),
		Out:      m.out.Load(),
		Errors:   m.errors.Load(),
		Elapsed:  time.Duration(m.elapsed.Load()),
		Busy:     make([]time.Duration, len(m.busy)),
	}
	for i := range m.busy {
		s.Busy[i] = time.Duration(m.busy[i].Load())
	}
	return s
}
