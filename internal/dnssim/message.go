// Package dnssim implements the DNS substrate under the measurement: an
// RFC 1035 wire-format codec, an authoritative name server loaded from
// the synthetic registry, and a stub resolver. The paper observes that
// "all IDNs in zone files have associated NS records so all resolution
// errors come from name servers (e.g., DNS REFUSED error)" (§IV-D); this
// package makes that concrete — unresolvable domains are served an actual
// REFUSED response, and the crawler's "not resolved" outcome is the
// resolver's observation of that rcode.
package dnssim

import (
	"errors"
	"fmt"
	"strings"
)

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes used by the simulator.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
}

// String returns the conventional rcode mnemonic.
func (rc RCode) String() string {
	if n, ok := rcodeNames[rc]; ok {
		return n
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Type is a resource-record type.
type Type uint16

// Record types supported by the simulator.
const (
	TypeA    Type = 1
	TypeNS   Type = 2
	TypeAAAA Type = 28
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Question is the query section entry.
type Question struct {
	// Name is the queried domain (ASCII/ACE form, no trailing dot).
	Name string
	// Type is the queried record type.
	Type Type
}

// Record is one answer/authority resource record.
type Record struct {
	// Name owns the record.
	Name string
	// Type of the record data.
	Type Type
	// TTL in seconds.
	TTL uint32
	// Data: dotted-quad for A, target name for NS.
	Data string
}

// Message is a DNS query or response.
type Message struct {
	// ID is the transaction identifier.
	ID uint16
	// Response marks QR=1.
	Response bool
	// Authoritative marks AA=1.
	Authoritative bool
	// RecursionDesired carries RD.
	RecursionDesired bool
	// RCode is the response code.
	RCode RCode
	// Question holds exactly zero or one question in this simulator.
	Question []Question
	// Answers holds the answer section.
	Answers []Record
}

// Errors returned by the codec.
var (
	// ErrTruncatedMessage reports a message shorter than its structure.
	ErrTruncatedMessage = errors.New("dnssim: truncated message")
	// ErrBadName reports an unencodable or undecodable domain name.
	ErrBadName = errors.New("dnssim: bad domain name")
	// ErrBadPointer reports an invalid compression pointer.
	ErrBadPointer = errors.New("dnssim: bad compression pointer")
)

// appendName encodes a domain name as length-prefixed labels.
func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
	}
	return append(buf, 0), nil
}

// readName decodes a (possibly compressed) domain name starting at off,
// returning the name and the offset just past its in-place encoding.
func readName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	next := off
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				next = off + 1
			}
			return sb.String(), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
			}
			if ptr >= off || hops > 32 {
				return "", 0, ErrBadPointer
			}
			off = ptr
			jumped = true
			hops++
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrBadName)
		default:
			end := off + 1 + int(b)
			if end > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : end])
			off = end
		}
	}
}

// put16 appends a big-endian uint16.
func put16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }

// put32 appends a big-endian uint32.
func put32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func read16(msg []byte, off int) (uint16, int, error) {
	if off+2 > len(msg) {
		return 0, 0, ErrTruncatedMessage
	}
	return uint16(msg[off])<<8 | uint16(msg[off+1]), off + 2, nil
}

func read32(msg []byte, off int) (uint32, int, error) {
	if off+4 > len(msg) {
		return 0, 0, ErrTruncatedMessage
	}
	v := uint32(msg[off])<<24 | uint32(msg[off+1])<<16 | uint32(msg[off+2])<<8 | uint32(msg[off+3])
	return v, off + 4, nil
}

// Encode serializes the message to wire format (no name compression).
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = put16(buf, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	flags |= uint16(m.RCode) & 0x0F
	buf = put16(buf, flags)
	buf = put16(buf, uint16(len(m.Question)))
	buf = put16(buf, uint16(len(m.Answers)))
	buf = put16(buf, 0) // NSCOUNT
	buf = put16(buf, 0) // ARCOUNT
	var err error
	for _, q := range m.Question {
		if buf, err = appendName(buf, q.Name); err != nil {
			return nil, err
		}
		buf = put16(buf, uint16(q.Type))
		buf = put16(buf, ClassIN)
	}
	for _, rr := range m.Answers {
		if buf, err = appendName(buf, rr.Name); err != nil {
			return nil, err
		}
		buf = put16(buf, uint16(rr.Type))
		buf = put16(buf, ClassIN)
		buf = put32(buf, rr.TTL)
		rdata, err := encodeRData(rr)
		if err != nil {
			return nil, err
		}
		buf = put16(buf, uint16(len(rdata)))
		buf = append(buf, rdata...)
	}
	return buf, nil
}

func encodeRData(rr Record) ([]byte, error) {
	switch rr.Type {
	case TypeA:
		var quad [4]int
		if _, err := fmt.Sscanf(rr.Data, "%d.%d.%d.%d", &quad[0], &quad[1], &quad[2], &quad[3]); err != nil {
			return nil, fmt.Errorf("dnssim: bad A rdata %q: %w", rr.Data, err)
		}
		out := make([]byte, 4)
		for i, v := range quad {
			if v < 0 || v > 255 {
				return nil, fmt.Errorf("dnssim: bad A octet %d", v)
			}
			out[i] = byte(v)
		}
		return out, nil
	case TypeNS:
		return appendName(nil, rr.Data)
	default:
		return []byte(rr.Data), nil
	}
}

// Decode parses a wire-format message.
func Decode(wire []byte) (*Message, error) {
	m := &Message{}
	var err error
	off := 0
	var v uint16
	if m.ID, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	if v, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	m.Response = v&(1<<15) != 0
	m.Authoritative = v&(1<<10) != 0
	m.RecursionDesired = v&(1<<8) != 0
	m.RCode = RCode(v & 0x0F)
	var qd, an uint16
	if qd, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	if an, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	// Skip NSCOUNT/ARCOUNT (always zero from this encoder).
	if _, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	if _, off, err = read16(wire, off); err != nil {
		return nil, err
	}
	for i := 0; i < int(qd); i++ {
		var name string
		if name, off, err = readName(wire, off); err != nil {
			return nil, err
		}
		var qt uint16
		if qt, off, err = read16(wire, off); err != nil {
			return nil, err
		}
		if _, off, err = read16(wire, off); err != nil { // class
			return nil, err
		}
		m.Question = append(m.Question, Question{Name: name, Type: Type(qt)})
	}
	for i := 0; i < int(an); i++ {
		var rr Record
		if rr.Name, off, err = readName(wire, off); err != nil {
			return nil, err
		}
		var rt uint16
		if rt, off, err = read16(wire, off); err != nil {
			return nil, err
		}
		rr.Type = Type(rt)
		if _, off, err = read16(wire, off); err != nil { // class
			return nil, err
		}
		if rr.TTL, off, err = read32(wire, off); err != nil {
			return nil, err
		}
		var rdlen uint16
		if rdlen, off, err = read16(wire, off); err != nil {
			return nil, err
		}
		if off+int(rdlen) > len(wire) {
			return nil, ErrTruncatedMessage
		}
		switch rr.Type {
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnssim: A rdata length %d", rdlen)
			}
			rr.Data = fmt.Sprintf("%d.%d.%d.%d", wire[off], wire[off+1], wire[off+2], wire[off+3])
			off += 4
		case TypeNS:
			var target string
			if target, _, err = readName(wire, off); err != nil {
				return nil, err
			}
			rr.Data = target
			off += int(rdlen)
		default:
			rr.Data = string(wire[off : off+int(rdlen)])
			off += int(rdlen)
		}
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}
