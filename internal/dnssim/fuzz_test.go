package dnssim

import (
	"testing"
)

// FuzzDecode ensures the wire decoder never panics or over-reads on
// arbitrary bytes, and that decodable messages re-encode decodably.
func FuzzDecode(f *testing.F) {
	seed := &Message{
		ID: 7, Response: true, Authoritative: true,
		Question: []Question{{Name: "xn--0wwy37b.com", Type: TypeA}},
		Answers:  []Record{{Name: "xn--0wwy37b.com", Type: TypeA, TTL: 60, Data: "192.0.2.1"}},
	}
	wire, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re, err := msg.Encode()
		if err != nil {
			// Decoded names may contain characters our encoder refuses
			// (e.g. embedded dots from binary labels); that is acceptable.
			return
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
	})
}

// FuzzServerHandleWire ensures the server survives arbitrary queries.
func FuzzServerHandleWire(f *testing.F) {
	q := &Message{ID: 3, Question: []Question{{Name: "good.com", Type: TypeA}}}
	wire, err := q.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte{1, 2, 3})
	s := NewServer()
	s.SetAnswer("good.com", "192.0.2.1")
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := s.HandleWire(data)
		if err != nil {
			return
		}
		if _, err := Decode(resp); err != nil {
			t.Fatalf("server produced undecodable response: %v", err)
		}
	})
}
