package dnssim

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Behavior is a name server's configured handling of one domain.
type Behavior int

// Server behaviors per domain.
const (
	// BehaviorAnswer serves the configured records.
	BehaviorAnswer Behavior = iota + 1
	// BehaviorRefused answers REFUSED — the misconfiguration the paper
	// identifies behind the IDN "not resolved" census (§IV-D).
	BehaviorRefused
	// BehaviorServFail answers SERVFAIL.
	BehaviorServFail
)

// zoneEntry is the server's state for one name.
type zoneEntry struct {
	behavior Behavior
	records  []Record
}

// Server is an authoritative DNS server over an in-memory zone. It is
// safe for concurrent use after configuration.
type Server struct {
	mu      sync.RWMutex
	entries map[string]zoneEntry
}

// NewServer returns an empty authoritative server.
func NewServer() *Server {
	return &Server{entries: make(map[string]zoneEntry)}
}

// SetAnswer configures A records for a domain.
func (s *Server) SetAnswer(domain string, ips ...string) {
	records := make([]Record, 0, len(ips))
	for _, ip := range ips {
		records = append(records, Record{Name: strings.ToLower(domain), Type: TypeA, TTL: 300, Data: ip})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[strings.ToLower(domain)] = zoneEntry{behavior: BehaviorAnswer, records: records}
}

// SetBehavior configures a non-answering behavior for a domain.
func (s *Server) SetBehavior(domain string, b Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[strings.ToLower(domain)] = zoneEntry{behavior: b}
}

// Len returns the number of configured names.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Handle answers one query message.
func (s *Server) Handle(query *Message) *Message {
	resp := &Message{
		ID:            query.ID,
		Response:      true,
		Authoritative: true,
		Question:      query.Question,
	}
	if len(query.Question) != 1 {
		resp.RCode = RCodeFormErr
		return resp
	}
	q := query.Question[0]
	s.mu.RLock()
	entry, ok := s.entries[strings.ToLower(q.Name)]
	s.mu.RUnlock()
	if !ok {
		resp.RCode = RCodeNXDomain
		return resp
	}
	switch entry.behavior {
	case BehaviorRefused:
		resp.RCode = RCodeRefused
	case BehaviorServFail:
		resp.RCode = RCodeServFail
	default:
		for _, rr := range entry.records {
			if rr.Type == q.Type {
				resp.Answers = append(resp.Answers, rr)
			}
		}
	}
	return resp
}

// HandleWire answers a wire-format query with a wire-format response.
func (s *Server) HandleWire(wire []byte) ([]byte, error) {
	query, err := Decode(wire)
	if err != nil {
		return nil, err
	}
	return s.Handle(query).Encode()
}

// ServeUDP answers queries on the given packet connection until the
// connection is closed. Run it in a goroutine; Close the conn to stop.
func (s *Server) ServeUDP(conn net.PacketConn) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnssim: read: %w", err)
		}
		resp, err := s.HandleWire(buf[:n])
		if err != nil {
			continue // drop malformed queries, as real servers do
		}
		if _, err := conn.WriteTo(resp, addr); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("dnssim: write: %w", err)
		}
	}
}

// Result is a resolver's view of one lookup.
type Result struct {
	// RCode is the final response code.
	RCode RCode
	// IPs are the A answers when RCode is NOERROR.
	IPs []string
}

// Resolved reports whether the lookup produced usable addresses.
func (r Result) Resolved() bool { return r.RCode == RCodeNoError && len(r.IPs) > 0 }

// Resolver is a stub resolver over a query transport.
type Resolver struct {
	// Exchange sends one wire-format query and returns the wire-format
	// response. InMemory and UDP transports are provided.
	Exchange func(query []byte) ([]byte, error)
	nextID   uint16
	mu       sync.Mutex
}

// NewInMemoryResolver wires a resolver directly to a server, with no
// sockets — the fast path the crawler uses.
func NewInMemoryResolver(s *Server) *Resolver {
	return &Resolver{Exchange: s.HandleWire}
}

// NewUDPResolver wires a resolver to a UDP server address.
func NewUDPResolver(addr string) *Resolver {
	return &Resolver{Exchange: func(query []byte) ([]byte, error) {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("dnssim: dial: %w", err)
		}
		defer conn.Close()
		if _, err := conn.Write(query); err != nil {
			return nil, fmt.Errorf("dnssim: send: %w", err)
		}
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("dnssim: receive: %w", err)
		}
		return buf[:n], nil
	}}
}

// LookupA resolves a domain's A records through the transport.
func (r *Resolver) LookupA(domain string) (Result, error) {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	query := &Message{
		ID:               id,
		RecursionDesired: true,
		Question:         []Question{{Name: strings.ToLower(domain), Type: TypeA}},
	}
	wire, err := query.Encode()
	if err != nil {
		return Result{}, err
	}
	respWire, err := r.Exchange(wire)
	if err != nil {
		return Result{}, err
	}
	resp, err := Decode(respWire)
	if err != nil {
		return Result{}, err
	}
	if resp.ID != id {
		return Result{}, fmt.Errorf("dnssim: transaction ID mismatch: %d != %d", resp.ID, id)
	}
	out := Result{RCode: resp.RCode}
	for _, rr := range resp.Answers {
		if rr.Type == TypeA {
			out.IPs = append(out.IPs, rr.Data)
		}
	}
	return out, nil
}
