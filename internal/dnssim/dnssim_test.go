package dnssim

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	msg := &Message{
		ID:               0xBEEF,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: true,
		RCode:            RCodeNoError,
		Question:         []Question{{Name: "xn--0wwy37b.com", Type: TypeA}},
		Answers: []Record{
			{Name: "xn--0wwy37b.com", Type: TypeA, TTL: 300, Data: "192.0.2.7"},
			{Name: "xn--0wwy37b.com", Type: TypeA, TTL: 300, Data: "10.1.2.3"},
		},
	}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msg, back) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, msg)
	}
}

func TestNSRecordRoundTrip(t *testing.T) {
	msg := &Message{
		ID:       7,
		Response: true,
		Question: []Question{{Name: "example.com", Type: TypeNS}},
		Answers:  []Record{{Name: "example.com", Type: TypeNS, TTL: 86400, Data: "ns1.dns-host.net"}},
	}
	wire, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Answers[0].Data != "ns1.dns-host.net" {
		t.Errorf("NS data = %q", back.Answers[0].Data)
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []RCode{RCodeNoError, RCodeServFail, RCodeNXDomain, RCodeRefused} {
		msg := &Message{ID: 1, Response: true, RCode: rc,
			Question: []Question{{Name: "a.com", Type: TypeA}}}
		wire, err := msg.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if back.RCode != rc {
			t.Errorf("rcode = %v, want %v", back.RCode, rc)
		}
	}
}

func TestDecodeCompressionPointer(t *testing.T) {
	// Build a message manually with a compressed answer name pointing at
	// the question name (offset 12).
	var wire []byte
	wire = put16(wire, 42)     // ID
	wire = put16(wire, 0x8400) // QR|AA
	wire = put16(wire, 1)      // QDCOUNT
	wire = put16(wire, 1)      // ANCOUNT
	wire = put16(wire, 0)
	wire = put16(wire, 0)
	var err error
	wire, err = appendName(wire, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	wire = put16(wire, uint16(TypeA))
	wire = put16(wire, ClassIN)
	wire = append(wire, 0xC0, 12) // pointer to question name
	wire = put16(wire, uint16(TypeA))
	wire = put16(wire, ClassIN)
	wire = put32(wire, 60)
	wire = put16(wire, 4)
	wire = append(wire, 192, 0, 2, 1)

	msg, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Answers[0].Name != "example.com" || msg.Answers[0].Data != "192.0.2.1" {
		t.Errorf("answer = %+v", msg.Answers[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0, 1, 0, 0, 0, 1}, // truncated header
	}
	for i, wire := range cases {
		if _, err := Decode(wire); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Forward pointer loop.
	var wire []byte
	wire = put16(wire, 1)
	wire = put16(wire, 0)
	wire = put16(wire, 1)
	wire = put16(wire, 0)
	wire = put16(wire, 0)
	wire = put16(wire, 0)
	wire = append(wire, 0xC0, 12) // points at itself
	wire = put16(wire, 1)
	wire = put16(wire, 1)
	if _, err := Decode(wire); !errors.Is(err, ErrBadPointer) {
		t.Errorf("self-pointer err = %v", err)
	}
}

func TestEncodeBadNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	for _, name := range []string{"..", string(long) + ".com"} {
		m := &Message{Question: []Question{{Name: name, Type: TypeA}}}
		if _, err := m.Encode(); err == nil {
			t.Errorf("name %q encoded", name)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(id uint16, ttl uint32, a, b, c, d uint8) bool {
		msg := &Message{
			ID:       id,
			Response: true,
			Question: []Question{{Name: "quick.example.com", Type: TypeA}},
			Answers: []Record{{
				Name: "quick.example.com", Type: TypeA, TTL: ttl,
				Data: net.IPv4(a, b, c, d).String(),
			}},
		}
		wire, err := msg.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(wire)
		return err == nil && reflect.DeepEqual(msg, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newTestServer() *Server {
	s := NewServer()
	s.SetAnswer("good.com", "192.0.2.1", "192.0.2.2")
	s.SetBehavior("refused.com", BehaviorRefused)
	s.SetBehavior("broken.com", BehaviorServFail)
	return s
}

func TestServerHandle(t *testing.T) {
	s := newTestServer()
	r := NewInMemoryResolver(s)

	res, err := r.LookupA("good.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved() || len(res.IPs) != 2 {
		t.Errorf("good.com: %+v", res)
	}

	res, err = r.LookupA("refused.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != RCodeRefused || res.Resolved() {
		t.Errorf("refused.com: %+v", res)
	}

	res, err = r.LookupA("broken.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != RCodeServFail {
		t.Errorf("broken.com: %+v", res)
	}

	res, err = r.LookupA("missing.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != RCodeNXDomain {
		t.Errorf("missing.com: %+v", res)
	}
}

func TestServerCaseInsensitive(t *testing.T) {
	s := newTestServer()
	r := NewInMemoryResolver(s)
	res, err := r.LookupA("GOOD.COM")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved() {
		t.Errorf("case-folded lookup failed: %+v", res)
	}
}

func TestServerMultiQuestionFormErr(t *testing.T) {
	s := newTestServer()
	resp := s.Handle(&Message{ID: 1, Question: []Question{
		{Name: "a.com", Type: TypeA}, {Name: "b.com", Type: TypeA},
	}})
	if resp.RCode != RCodeFormErr {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestServeUDPEndToEnd(t *testing.T) {
	s := newTestServer()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP available: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeUDP(conn) }()

	r := NewUDPResolver(conn.LocalAddr().String())
	res, err := r.LookupA("good.com")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved() {
		t.Errorf("UDP lookup: %+v", res)
	}
	res, err = r.LookupA("refused.com")
	if err != nil {
		t.Fatal(err)
	}
	if res.RCode != RCodeRefused {
		t.Errorf("UDP refused: %+v", res)
	}

	conn.Close()
	if err := <-done; err != nil {
		t.Errorf("server exit: %v", err)
	}
}

func TestTransactionIDMismatchDetected(t *testing.T) {
	s := newTestServer()
	r := &Resolver{Exchange: func(query []byte) ([]byte, error) {
		resp, err := s.HandleWire(query)
		if err != nil {
			return nil, err
		}
		resp[0] ^= 0xFF // corrupt the transaction ID
		return resp, nil
	}}
	if _, err := r.LookupA("good.com"); err == nil {
		t.Error("ID mismatch not detected")
	}
}

func TestRCodeString(t *testing.T) {
	if RCodeRefused.String() != "REFUSED" || RCodeNXDomain.String() != "NXDOMAIN" {
		t.Error("rcode names wrong")
	}
	if RCode(9).String() != "RCODE9" {
		t.Error("unknown rcode formatting wrong")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	msg := &Message{
		ID: 1, Response: true,
		Question: []Question{{Name: "xn--0wwy37b.com", Type: TypeA}},
		Answers:  []Record{{Name: "xn--0wwy37b.com", Type: TypeA, TTL: 300, Data: "192.0.2.1"}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := msg.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerLookup(b *testing.B) {
	s := newTestServer()
	r := NewInMemoryResolver(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.LookupA("good.com"); err != nil {
			b.Fatal(err)
		}
	}
}
