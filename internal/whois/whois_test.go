package whois

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Domain:          "xn--0wwy37b.com",
		Registrar:       "GMO Internet Inc.",
		RegistrantEmail: "daidesheng88@gmail.com",
		Created:         time.Date(2015, 3, 2, 10, 30, 0, 0, time.UTC),
		Expires:         time.Date(2018, 3, 2, 10, 30, 0, 0, time.UTC),
		NameServers:     []string{"ns1.parking.com", "ns2.parking.com"},
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	rec := sampleRecord()
	back, err := ParseString(Render(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, rec)
	}
}

func TestPrivacyRoundTrip(t *testing.T) {
	rec := Record{
		Domain:    "example.com",
		Registrar: "Name.com, Inc.",
		Privacy:   true,
		Created:   time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	back, err := ParseString(Render(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Privacy {
		t.Error("privacy flag lost")
	}
	if back.RegistrantEmail != "" {
		t.Error("privacy record must not expose email")
	}
}

func TestParseIgnoresUnknownFieldsAndComments(t *testing.T) {
	text := `% legal disclaimer
Domain Name: EXAMPLE.NET
Registrar: Dynadot, LLC.
DNSSEC: unsigned
Some Unknown Field: whatever
>>> Last update of whois database <<<
`
	rec, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Domain != "example.net" || rec.Registrar != "Dynadot, LLC." {
		t.Errorf("parsed %+v", rec)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("Registrar: X\n"); !errors.Is(err, ErrMissingDomain) {
		t.Errorf("err = %v, want ErrMissingDomain", err)
	}
	if _, err := ParseString("Domain Name: A.COM\nCreation Date: not-a-date\n"); !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(label uint32, regIdx, emailIdx uint8, privacy bool, yearOff uint16, nsCount uint8) bool {
		registrars := []string{"GMO Internet Inc.", "GoDaddy.com, LLC.", "", "Gabia, Inc."}
		emails := []string{"a@qq.com", "owner@163.com", "", "x@gmail.com"}
		rec := Record{
			Domain:          "xn--test" + strings.Repeat("a", int(label%5)) + ".com",
			Registrar:       registrars[int(regIdx)%len(registrars)],
			RegistrantEmail: emails[int(emailIdx)%len(emails)],
			Privacy:         privacy,
			Created:         time.Date(2000+int(yearOff%18), 5, 10, 0, 0, 0, 0, time.UTC),
		}
		for i := 0; i < int(nsCount%4); i++ {
			rec.NameServers = append(rec.NameServers, "ns"+string(rune('1'+i))+".host.net")
		}
		if rec.Privacy {
			rec.RegistrantEmail = "" // codec cannot carry both
		}
		back, err := ParseString(Render(rec))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(rec, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Put(sampleRecord())
	if s.Len() != 1 {
		t.Fatal("Put failed")
	}
	if _, ok := s.Get("XN--0WWY37B.COM"); !ok {
		t.Error("Get should be case-insensitive")
	}
	if _, ok := s.Get("missing.com"); ok {
		t.Error("unexpected hit")
	}
	s.Put(sampleRecord()) // idempotent replace
	if s.Len() != 1 {
		t.Error("duplicate Put should replace")
	}
}

func buildTestStore() *Store {
	s := NewStore()
	add := func(domain, registrar, email string, year int) {
		s.Put(Record{
			Domain:          domain,
			Registrar:       registrar,
			RegistrantEmail: email,
			Created:         time.Date(year, 6, 1, 0, 0, 0, 0, time.UTC),
		})
	}
	for i := 0; i < 5; i++ {
		add("gmo"+string(rune('a'+i))+".com", "GMO Internet Inc.", "776053229@qq.com", 2015)
	}
	for i := 0; i < 3; i++ {
		add("hichina"+string(rune('a'+i))+".com", "HiChina Zhicheng Technology Limited.", "daidesheng88@gmail.com", 2017)
	}
	add("solo.com", "Name.com, Inc.", "", 2000)
	s.Put(Record{Domain: "priv.com", Registrar: "Name.com, Inc.", Privacy: true,
		Created: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)})
	return s
}

func TestTopRegistrars(t *testing.T) {
	s := buildTestStore()
	top := s.TopRegistrars(2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Key != "GMO Internet Inc." || top[0].Count != 5 {
		t.Errorf("top registrar = %+v", top[0])
	}
	if top[1].Key != "HiChina Zhicheng Technology Limited." || top[1].Count != 3 {
		t.Errorf("second registrar = %+v", top[1])
	}
}

func TestTopRegistrantEmailsSkipsPrivacyAndEmpty(t *testing.T) {
	s := buildTestStore()
	top := s.TopRegistrantEmails(-1)
	if len(top) != 2 {
		t.Fatalf("emails = %+v", top)
	}
	if top[0].Key != "776053229@qq.com" || top[0].Count != 5 {
		t.Errorf("top email = %+v", top[0])
	}
}

func TestRegistrarCount(t *testing.T) {
	if got := buildTestStore().RegistrarCount(); got != 3 {
		t.Errorf("RegistrarCount = %d, want 3", got)
	}
}

func TestCreationsByYear(t *testing.T) {
	hist := buildTestStore().CreationsByYear()
	if hist[2015] != 5 || hist[2017] != 4 || hist[2000] != 1 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestDomainsSorted(t *testing.T) {
	s := buildTestStore()
	ds := s.Domains()
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Fatal("Domains not sorted")
		}
	}
	if len(ds) != s.Len() {
		t.Fatal("Domains length mismatch")
	}
}

func BenchmarkRender(b *testing.B) {
	rec := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Render(rec)
	}
}

func BenchmarkParse(b *testing.B) {
	text := Render(sampleRecord())
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}
