// Package whois models domain registration records, their text wire
// format, and the lookup store the measurement correlates IDNs against.
//
// The paper obtained WHOIS for 739,160 (50.19%) of its IDNs via industrial
// partners and parsed them "using a variety of tools, like python-whois",
// with the remainder missing due to registrar blocking and parser failures
// (only 1.1% of iTLD records parsed). The generator (package zonegen)
// reproduces that missingness structure; this package provides the record
// model, a reversible text codec in the de-facto RDAP-era key:value WHOIS
// style, and an in-memory store.
package whois

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Record is one parsed WHOIS registration record.
type Record struct {
	// Domain is the registered SLD in ACE form, e.g. "xn--0wwy37b.com".
	Domain string
	// Registrar is the sponsoring registrar's display name.
	Registrar string
	// RegistrantEmail is the registrant contact address; empty when the
	// registration is protected by a WHOIS privacy service.
	RegistrantEmail string
	// Created is the registration creation date.
	Created time.Time
	// Expires is the current expiry date.
	Expires time.Time
	// NameServers lists the delegated name servers.
	NameServers []string
	// Privacy reports whether the record is behind WHOIS privacy.
	Privacy bool
}

// Errors returned by Parse.
var (
	// ErrMissingDomain reports a record without a Domain Name field.
	ErrMissingDomain = errors.New("whois: record missing domain name")
	// ErrBadRecord reports a malformed field line.
	ErrBadRecord = errors.New("whois: malformed record")
)

// timeLayout is the timestamp format used on the wire (RFC 3339, UTC).
const timeLayout = "2006-01-02T15:04:05Z"

// Render serializes the record in key:value WHOIS text form. Rendering is
// deterministic (fixed field order) and reversible with Parse.
func Render(rec Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(rec.Domain))
	if rec.Registrar != "" {
		fmt.Fprintf(&b, "Registrar: %s\n", rec.Registrar)
	}
	if !rec.Created.IsZero() {
		fmt.Fprintf(&b, "Creation Date: %s\n", rec.Created.UTC().Format(timeLayout))
	}
	if !rec.Expires.IsZero() {
		fmt.Fprintf(&b, "Registry Expiry Date: %s\n", rec.Expires.UTC().Format(timeLayout))
	}
	if rec.Privacy {
		b.WriteString("Registrant Organization: REDACTED FOR PRIVACY\n")
	} else if rec.RegistrantEmail != "" {
		fmt.Fprintf(&b, "Registrant Email: %s\n", rec.RegistrantEmail)
	}
	for _, ns := range rec.NameServers {
		fmt.Fprintf(&b, "Name Server: %s\n", strings.ToUpper(ns))
	}
	b.WriteString(">>> Last update of whois database <<<\n")
	return b.String()
}

// Parse reads one WHOIS text record. Unknown fields are ignored, matching
// how real WHOIS parsers behave across registrar formats.
func Parse(r io.Reader) (Record, error) {
	var rec Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ">>>") || strings.HasPrefix(line, "%") {
			continue
		}
		key, value, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "Domain Name":
			rec.Domain = strings.ToLower(value)
		case "Registrar":
			rec.Registrar = value
		case "Creation Date":
			t, err := time.Parse(timeLayout, value)
			if err != nil {
				return Record{}, fmt.Errorf("%w: creation date %q", ErrBadRecord, value)
			}
			rec.Created = t
		case "Registry Expiry Date":
			t, err := time.Parse(timeLayout, value)
			if err != nil {
				return Record{}, fmt.Errorf("%w: expiry date %q", ErrBadRecord, value)
			}
			rec.Expires = t
		case "Registrant Email":
			rec.RegistrantEmail = strings.ToLower(value)
		case "Registrant Organization":
			if strings.EqualFold(value, "REDACTED FOR PRIVACY") {
				rec.Privacy = true
			}
		case "Name Server":
			rec.NameServers = append(rec.NameServers, strings.ToLower(value))
		}
	}
	if err := sc.Err(); err != nil {
		return Record{}, fmt.Errorf("whois: read: %w", err)
	}
	if rec.Domain == "" {
		return Record{}, ErrMissingDomain
	}
	return rec, nil
}

// ParseString parses a record from a string.
func ParseString(s string) (Record, error) {
	return Parse(strings.NewReader(s))
}

// Store is an in-memory WHOIS database keyed by domain. Coverage gaps are
// represented by absence. Store is not safe for concurrent mutation; the
// pipeline builds it once, then reads concurrently.
type Store struct {
	records map[string]Record
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[string]Record)}
}

// Put inserts or replaces a record.
func (s *Store) Put(rec Record) {
	s.records[strings.ToLower(rec.Domain)] = rec
}

// Get looks up the record for a domain.
func (s *Store) Get(domain string) (Record, bool) {
	rec, ok := s.records[strings.ToLower(domain)]
	return rec, ok
}

// Len returns the number of records (the WHOIS coverage numerator of
// Table I).
func (s *Store) Len() int { return len(s.records) }

// Domains returns all covered domains, sorted.
func (s *Store) Domains() []string {
	out := make([]string, 0, len(s.records))
	for d := range s.records {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// GroupCount is a (key, count) aggregation row used by the registrar and
// registrant rankings (Tables III and IV).
type GroupCount struct {
	Key   string
	Count int
}

// TopRegistrars ranks registrars by number of records, descending, ties by
// name. Records with empty registrar are skipped.
func (s *Store) TopRegistrars(k int) []GroupCount {
	return s.topBy(k, func(r Record) string { return r.Registrar })
}

// TopRegistrantEmails ranks registrant emails by number of records,
// descending. Privacy-protected and empty emails are skipped.
func (s *Store) TopRegistrantEmails(k int) []GroupCount {
	return s.topBy(k, func(r Record) string {
		if r.Privacy {
			return ""
		}
		return r.RegistrantEmail
	})
}

func (s *Store) topBy(k int, key func(Record) string) []GroupCount {
	counts := make(map[string]int)
	for _, rec := range s.records {
		if kv := key(rec); kv != "" {
			counts[kv]++
		}
	}
	out := make([]GroupCount, 0, len(counts))
	for kv, n := range counts {
		out = append(out, GroupCount{Key: kv, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// RegistrarCount returns the number of distinct registrars (the paper
// found over 700 for IDNs, over 1,500 for the non-IDN sample).
func (s *Store) RegistrarCount() int {
	set := make(map[string]struct{})
	for _, rec := range s.records {
		if rec.Registrar != "" {
			set[rec.Registrar] = struct{}{}
		}
	}
	return len(set)
}

// CreationsByYear histograms record creation dates by calendar year — the
// series behind Figure 1.
func (s *Store) CreationsByYear() map[int]int {
	out := make(map[int]int)
	for _, rec := range s.records {
		if !rec.Created.IsZero() {
			out[rec.Created.Year()]++
		}
	}
	return out
}
