package brands

import (
	"strings"
	"testing"

	"idnlab/internal/idna"
)

func TestListHasExactlyThousand(t *testing.T) {
	if n := len(List()); n != 1000 {
		t.Fatalf("len(List()) = %d, want 1000", n)
	}
}

func TestRanksAreSequential(t *testing.T) {
	for i, b := range List() {
		if b.Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, b.Rank)
		}
	}
}

func TestPaperBrandsAtStatedRanks(t *testing.T) {
	want := map[string]int{
		"google.com":   1,
		"youtube.com":  2,
		"facebook.com": 3,
		"qq.com":       9,
		"amazon.com":   11,
		"twitter.com":  13,
		"apple.com":    55,
		"soso.com":     96,
		"china.com":    166,
		"1688.com":     191,
		"bet365.com":   332,
		"icloud.com":   372,
		"go.com":       391,
		"sex.com":      537,
		"as.com":       634,
		"ea.com":       742,
		"58.com":       861,
	}
	for domain, rank := range want {
		b, ok := Lookup(domain)
		if !ok {
			t.Errorf("brand %s missing", domain)
			continue
		}
		if b.Rank != rank {
			t.Errorf("%s rank = %d, want %d", domain, b.Rank, rank)
		}
	}
}

func TestDomainsUniqueAndValid(t *testing.T) {
	seen := make(map[string]bool, 1000)
	for _, b := range List() {
		if seen[b.Domain] {
			t.Fatalf("duplicate domain %s", b.Domain)
		}
		seen[b.Domain] = true
		if _, err := idna.ToASCII(b.Domain); err != nil {
			t.Errorf("brand %s invalid: %v", b.Domain, err)
		}
		for i := 0; i < len(b.Domain); i++ {
			if b.Domain[i] >= 0x80 {
				t.Errorf("brand %s is not ASCII", b.Domain)
			}
		}
		if strings.Count(b.Domain, ".") != 1 {
			t.Errorf("brand %s is not an SLD", b.Domain)
		}
	}
}

func TestLabel(t *testing.T) {
	b, _ := Lookup("google.com")
	if b.Label() != "google" {
		t.Errorf("Label = %q", b.Label())
	}
}

func TestTopK(t *testing.T) {
	if got := TopK(10); len(got) != 10 || got[0].Domain != "google.com" {
		t.Errorf("TopK(10) = %v", got)
	}
	if got := TopK(0); len(got) != 0 {
		t.Error("TopK(0) should be empty")
	}
	if got := TopK(-3); len(got) != 0 {
		t.Error("TopK(-3) should be empty")
	}
	if got := TopK(5000); len(got) != 1000 {
		t.Error("TopK should clamp to 1000")
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if _, ok := Lookup("GOOGLE.COM"); !ok {
		t.Error("Lookup should be case-insensitive")
	}
	if _, ok := Lookup("definitely-not-a-brand.example"); ok {
		t.Error("unexpected hit")
	}
}

func TestLabels(t *testing.T) {
	ls := Labels(3)
	want := []string{"google", "youtube", "facebook"}
	for i, w := range want {
		if ls[i] != w {
			t.Errorf("Labels[%d] = %q, want %q", i, ls[i], w)
		}
	}
}

func TestByLength(t *testing.T) {
	groups := ByLength(1000)
	total := 0
	for n, bs := range groups {
		for _, b := range bs {
			if len([]rune(b.Label())) != n {
				t.Fatalf("brand %s in wrong length bucket %d", b.Domain, n)
			}
			total++
		}
	}
	if total != 1000 {
		t.Fatalf("ByLength covers %d brands", total)
	}
	// 58.com and qq.com should be in bucket 2.
	found := false
	for _, b := range groups[2] {
		if b.Domain == "58.com" {
			found = true
		}
	}
	if !found {
		t.Error("58.com missing from length-2 bucket")
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a := List()
	b := List()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("List() not stable")
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	List()
	for i := 0; i < b.N; i++ {
		_, _ = Lookup("icloud.com")
	}
}
