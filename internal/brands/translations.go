package brands

// Translations maps brand domains to native-language names an attacker
// could register as Type-2 semantic IDNs (paper Table X: 格力空调.net for
// Gree, 奔驰汽车.com for Mercedes-Benz, 北京交通大学.com for Beijing
// Jiaotong University). The entries cover the paper's examples plus
// translated names of the major top-1000 brands. A production deployment
// would source this from brand owners, as the CNNIC brand-protection
// service the paper cites does.
var Translations = map[string][]string{
	"gree.com":      {"格力空调", "格力电器", "格力"},
	"google.com":    {"谷歌", "谷歌搜索", "구글"},
	"apple.com":     {"苹果", "苹果公司", "애플", "アップル"},
	"amazon.com":    {"亚马逊", "アマゾン", "아마존"},
	"microsoft.com": {"微软", "마이크로소프트"},
	"facebook.com":  {"脸书", "페이스북"},
	"youtube.com":   {"油管", "유튜브"},
	"twitter.com":   {"推特", "트위터"},
	"baidu.com":     {"百度搜索", "바이두"},
	"taobao.com":    {"淘宝", "淘宝网"},
	"alipay.com":    {"支付宝"},
	"weibo.com":     {"新浪微博"},
	"netflix.com":   {"奈飞", "넷플릭스"},
	"spotify.com":   {"声田"},
	"paypal.com":    {"贝宝"},
	"ebay.com":      {"易贝"},
	"qq.com":        {"腾讯", "腾讯网"},
	"china.com":     {"中华网"},
	"dropbox.com":   {"多宝箱"},
	"linkedin.com":  {"领英"},
}
