// Package brands provides the ranked brand-domain list the detectors
// target — the stand-in for the paper's "Alexa Top 1K SLDs".
//
// The real Alexa ranking is a retired proprietary feed. The substitute
// pins every brand the paper names to its stated Alexa rank (google #1,
// youtube #2, facebook #3, qq #9, amazon #11, twitter #13, apple #55,
// soso #96, china #166, 1688 #191, bet365 #332, icloud #372, go #391,
// sex #537, as #634, ea #742, 58 #861, …) and fills the remaining ranks
// with deterministic synthetic SLDs, so detector outputs (Tables XIII/XIV,
// Figures 6/7) rank the same heads the paper reports.
package brands

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Brand is one entry of the ranked list.
type Brand struct {
	// Domain is the brand SLD, e.g. "google.com".
	Domain string
	// Rank is the 1-based popularity rank.
	Rank int
}

// Label returns the second-level label without the TLD.
func (b Brand) Label() string {
	if i := strings.IndexByte(b.Domain, '.'); i >= 0 {
		return b.Domain[:i]
	}
	return b.Domain
}

// pinned holds the brands the paper names, at their stated Alexa ranks,
// plus a few well-known heads to make the top of the list realistic.
var pinned = map[int]string{
	1:   "google.com",
	2:   "youtube.com",
	3:   "facebook.com",
	4:   "baidu.com",
	5:   "wikipedia.org",
	6:   "yahoo.com",
	7:   "reddit.com",
	9:   "qq.com",
	11:  "amazon.com",
	12:  "taobao.com",
	13:  "twitter.com",
	15:  "instagram.com",
	18:  "weibo.com",
	21:  "ebay.com",
	25:  "netflix.com",
	29:  "linkedin.com",
	34:  "microsoft.com",
	42:  "github.com",
	55:  "apple.com",
	68:  "alipay.com",
	77:  "paypal.com",
	96:  "soso.com",
	130: "dropbox.com",
	166: "china.com",
	191: "1688.com",
	240: "spotify.com",
	332: "bet365.com",
	372: "icloud.com",
	391: "go.com",
	470: "gree.com",
	537: "sex.com",
	634: "as.com",
	742: "ea.com",
	861: "58.com",
}

// Word pools for synthetic filler brands: two-part compounds give
// plausible, mutually distinct ASCII SLDs.
var (
	fillHeads = []string{
		"news", "shop", "cloud", "data", "game", "play", "star", "blue",
		"fast", "easy", "smart", "home", "tech", "web", "net", "top",
		"mega", "ultra", "prime", "alpha", "delta", "nova", "terra", "vista",
		"metro", "urban", "pixel", "cyber", "hyper", "quantum", "zen", "apex",
	}
	fillTails = []string{
		"hub", "zone", "base", "port", "link", "cast", "mart", "desk",
		"pad", "kit", "lab", "box", "dex", "ware", "gate", "works",
		"nest", "forge", "grid", "flow", "line", "spot", "view", "scape",
		"vault", "field", "craft", "wave", "track", "point", "sense", "loop",
	}
	fillTLDs = []string{"com", "com", "com", "net", "org"} // com-heavy like Alexa
)

var (
	listOnce sync.Once
	list     []Brand
	byDomain map[string]Brand
)

func build() {
	seen := make(map[string]bool, 1100)
	byDomain = make(map[string]Brand, 1100)
	list = make([]Brand, 0, 1000)
	for _, d := range pinned {
		seen[d] = true
	}
	next := 0
	for rank := 1; rank <= 1000; rank++ {
		domain, ok := pinned[rank]
		for !ok {
			h := fillHeads[next%len(fillHeads)]
			t := fillTails[(next/len(fillHeads))%len(fillTails)]
			tld := fillTLDs[next%len(fillTLDs)]
			cand := h + t + "." + tld
			next++
			if !seen[cand] {
				domain, ok = cand, true
				seen[cand] = true
			}
			if next > 100000 {
				panic("brands: filler pool exhausted")
			}
		}
		b := Brand{Domain: domain, Rank: rank}
		list = append(list, b)
		byDomain[domain] = b
	}
}

// List returns the full top-1000 brand list in rank order. The returned
// slice is shared; callers must not modify it.
func List() []Brand {
	listOnce.Do(build)
	return list
}

// TopK returns the first k brands by rank (k clamped to [0, 1000]).
func TopK(k int) []Brand {
	l := List()
	if k < 0 {
		k = 0
	}
	if k > len(l) {
		k = len(l)
	}
	return l[:k]
}

// Lookup returns the brand entry for a domain, if it is in the list.
func Lookup(domain string) (Brand, bool) {
	List()
	b, ok := byDomain[strings.ToLower(domain)]
	return b, ok
}

// Labels returns the second-level labels of the top-k brands, rank order.
func Labels(k int) []string {
	top := TopK(k)
	out := make([]string, len(top))
	for i, b := range top {
		out[i] = b.Label()
	}
	return out
}

// ByLength groups the top-k brands by the rune length of their SLD label —
// the index the homograph detector's prefilter uses to avoid the full
// pair-wise SSIM sweep.
func ByLength(k int) map[int][]Brand {
	out := make(map[int][]Brand)
	for _, b := range TopK(k) {
		n := len([]rune(b.Label()))
		out[n] = append(out[n], b)
	}
	for _, bs := range out {
		sort.Slice(bs, func(i, j int) bool { return bs[i].Rank < bs[j].Rank })
	}
	return out
}

// String implements fmt.Stringer.
func (b Brand) String() string {
	return fmt.Sprintf("#%d %s", b.Rank, b.Domain)
}
