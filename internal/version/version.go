// Package version is the single source of the build identity reported
// by every long-running binary (idnserve, idngateway): health and
// readiness bodies include it so operators can tell which build a node
// runs straight from the load balancer's probe logs, and the gateway's
// merged metrics can surface version skew across a cluster.
package version

import "runtime"

// Version is the repository's semantic version, bumped per PR wave.
const Version = "0.5.0"

// Runtime reports the Go runtime the binary was built with.
func Runtime() string { return runtime.Version() }

// Full is the identity string used in health bodies and logs.
func Full() string { return "idnlab/" + Version + " (" + runtime.Version() + ")" }
