// Package blacklist models URL/domain blacklist feeds and their union.
//
// The paper unioned three commercial feeds — VirusTotal, Qihoo 360 and
// Baidu — and "if an IDN is alarmed by any of the blacklists, we considered
// the IDN as malicious", labelling 6,241 IDNs (0.42%). The generator
// populates three synthetic feeds at the per-TLD rates of Table I; this
// package provides the feed and aggregate types the pipeline queries.
package blacklist

import (
	"sort"
	"strings"
)

// Feed names mirroring the paper's three sources.
const (
	FeedVirusTotal = "VirusTotal"
	Feed360        = "360"
	FeedBaidu      = "Baidu"
)

// Feed is one blacklist source: a named set of domains.
type Feed struct {
	name    string
	domains map[string]struct{}
}

// NewFeed returns an empty feed with the given display name.
func NewFeed(name string) *Feed {
	return &Feed{name: name, domains: make(map[string]struct{})}
}

// Name returns the feed's display name.
func (f *Feed) Name() string { return f.name }

// Add inserts a domain into the feed (case-insensitive).
func (f *Feed) Add(domain string) {
	f.domains[strings.ToLower(domain)] = struct{}{}
}

// Contains reports whether the feed flags the domain.
func (f *Feed) Contains(domain string) bool {
	_, ok := f.domains[strings.ToLower(domain)]
	return ok
}

// Len returns the number of flagged domains.
func (f *Feed) Len() int { return len(f.domains) }

// Domains returns all flagged domains, sorted.
func (f *Feed) Domains() []string {
	out := make([]string, 0, len(f.domains))
	for d := range f.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Aggregate is the union of several feeds — the paper's "malicious"
// labelling function.
type Aggregate struct {
	feeds []*Feed
}

// NewAggregate unions the given feeds. The feed slice is copied.
func NewAggregate(feeds ...*Feed) *Aggregate {
	fs := make([]*Feed, len(feeds))
	copy(fs, feeds)
	return &Aggregate{feeds: fs}
}

// Feeds returns the member feeds in construction order.
func (a *Aggregate) Feeds() []*Feed {
	out := make([]*Feed, len(a.feeds))
	copy(out, a.feeds)
	return out
}

// IsMalicious reports whether any member feed flags the domain.
func (a *Aggregate) IsMalicious(domain string) bool {
	for _, f := range a.feeds {
		if f.Contains(domain) {
			return true
		}
	}
	return false
}

// FlaggedBy returns the names of the feeds flagging the domain.
func (a *Aggregate) FlaggedBy(domain string) []string {
	var out []string
	for _, f := range a.feeds {
		if f.Contains(domain) {
			out = append(out, f.name)
		}
	}
	return out
}

// Union returns the distinct flagged domains across all feeds, sorted —
// the paper's Total column of Table I.
func (a *Aggregate) Union() []string {
	set := make(map[string]struct{})
	for _, f := range a.feeds {
		for d := range f.domains {
			set[d] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// UnionLen returns the size of the union without materializing it.
func (a *Aggregate) UnionLen() int {
	set := make(map[string]struct{})
	for _, f := range a.feeds {
		for d := range f.domains {
			set[d] = struct{}{}
		}
	}
	return len(set)
}
