package blacklist

import (
	"testing"
	"testing/quick"
)

func TestFeedBasics(t *testing.T) {
	f := NewFeed(FeedVirusTotal)
	if f.Name() != "VirusTotal" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.Len() != 0 || f.Contains("a.com") {
		t.Error("empty feed should contain nothing")
	}
	f.Add("xn--0wwy37b.com")
	if !f.Contains("xn--0wwy37b.com") {
		t.Error("Contains failed")
	}
	if !f.Contains("XN--0WWY37B.COM") {
		t.Error("Contains should fold case")
	}
	f.Add("XN--0WWY37B.COM")
	if f.Len() != 1 {
		t.Error("case-folded duplicate should not grow the feed")
	}
}

func TestAggregateUnion(t *testing.T) {
	vt := NewFeed(FeedVirusTotal)
	q := NewFeed(Feed360)
	bd := NewFeed(FeedBaidu)
	vt.Add("a.com")
	vt.Add("b.com")
	q.Add("b.com")
	q.Add("c.com")
	bd.Add("d.com")
	agg := NewAggregate(vt, q, bd)

	for _, d := range []string{"a.com", "b.com", "c.com", "d.com"} {
		if !agg.IsMalicious(d) {
			t.Errorf("IsMalicious(%s) = false", d)
		}
	}
	if agg.IsMalicious("clean.com") {
		t.Error("clean domain flagged")
	}
	union := agg.Union()
	if len(union) != 4 {
		t.Errorf("union = %v", union)
	}
	if agg.UnionLen() != 4 {
		t.Errorf("UnionLen = %d", agg.UnionLen())
	}
	for i := 1; i < len(union); i++ {
		if union[i-1] >= union[i] {
			t.Fatal("union not sorted")
		}
	}
}

func TestFlaggedBy(t *testing.T) {
	vt := NewFeed(FeedVirusTotal)
	q := NewFeed(Feed360)
	vt.Add("both.com")
	q.Add("both.com")
	q.Add("only360.com")
	agg := NewAggregate(vt, q)
	if got := agg.FlaggedBy("both.com"); len(got) != 2 || got[0] != "VirusTotal" || got[1] != "360" {
		t.Errorf("FlaggedBy(both.com) = %v", got)
	}
	if got := agg.FlaggedBy("only360.com"); len(got) != 1 || got[0] != "360" {
		t.Errorf("FlaggedBy(only360.com) = %v", got)
	}
	if got := agg.FlaggedBy("clean.com"); got != nil {
		t.Errorf("FlaggedBy(clean.com) = %v", got)
	}
}

func TestUnionNeverSmallerThanLargestFeed(t *testing.T) {
	f := func(as, bs []uint16) bool {
		fa, fb := NewFeed("a"), NewFeed("b")
		for _, v := range as {
			fa.Add("d" + string(rune('a'+v%26)) + ".com")
		}
		for _, v := range bs {
			fb.Add("d" + string(rune('a'+v%26)) + ".com")
		}
		agg := NewAggregate(fa, fb)
		u := agg.UnionLen()
		max := fa.Len()
		if fb.Len() > max {
			max = fb.Len()
		}
		return u >= max && u <= fa.Len()+fb.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFeedsAccessorCopies(t *testing.T) {
	vt := NewFeed(FeedVirusTotal)
	agg := NewAggregate(vt)
	fs := agg.Feeds()
	fs[0] = nil // must not corrupt the aggregate
	if agg.Feeds()[0] == nil {
		t.Error("Feeds() exposed internal slice")
	}
}

func BenchmarkIsMalicious(b *testing.B) {
	vt := NewFeed(FeedVirusTotal)
	for i := 0; i < 5000; i++ {
		vt.Add("domain" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + ".com")
	}
	agg := NewAggregate(vt, NewFeed(Feed360), NewFeed(FeedBaidu))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agg.IsMalicious("domainzz.com")
	}
}
