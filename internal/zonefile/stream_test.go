package zonefile

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestScannerWalksRecords(t *testing.T) {
	s := NewScanner(strings.NewReader(sampleZone))
	var n int
	for s.Next() {
		n++
		rec := s.Record()
		if rec.Owner == "" || rec.Type == "" || rec.Data == "" {
			t.Fatalf("record %d incomplete: %+v", n, rec)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(z.Records) {
		t.Fatalf("scanner saw %d records, Parse saw %d", n, len(z.Records))
	}
	if s.Origin() != z.Origin {
		t.Fatalf("origin %q vs %q", s.Origin(), z.Origin)
	}
	if s.DefaultTTL() != z.DefaultTTL {
		t.Fatalf("ttl %d vs %d", s.DefaultTTL(), z.DefaultTTL)
	}
}

func TestScannerSyntaxError(t *testing.T) {
	s := NewScanner(strings.NewReader("$ORIGIN com.\nbroken\n"))
	for s.Next() {
	}
	if !errors.Is(s.Err(), ErrSyntax) {
		t.Fatalf("err = %v, want ErrSyntax", s.Err())
	}
	if s.Next() {
		t.Fatal("Next after error returned true")
	}
}

// TestScanStreamEquivalence pins ScanStream == Scan(Parse) on zones that
// exercise every owner shape: relative, absolute, glue, out-of-zone,
// duplicates, IDNs, and records preceding $ORIGIN.
func TestScanStreamEquivalence(t *testing.T) {
	zones := []string{
		sampleZone,
		"$ORIGIN com.\n",
		"$ORIGIN com.\nxn--pple-43d IN NS ns1.example.\nexample IN NS ns1.example.\n" +
			"example IN NS ns2.example.\nns1.example IN A 1.2.3.4\n" +
			"other.net. IN NS ns1.example.\nxn--pple-43d.com. IN DS 1234\n",
		// Records before $ORIGIN: Parse resolves them with the final
		// origin; the stream must buffer and agree.
		"xn--fiq228c IN NS ns1.example.\n$ORIGIN net.\nplain IN NS ns1.example.\n",
		// iTLD origin: every SLD is an IDN by construction.
		"$ORIGIN xn--fiqs8s.\nabc IN NS ns1.example.\nxn--55qx5d IN NS ns2.example.\n",
		// $ORIGIN after the last record: held owners flush at EOF.
		"xn--pple-43d IN NS ns1.example.\n$ORIGIN com.\n",
	}
	for i, text := range zones {
		z, err := Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("zone %d: %v", i, err)
		}
		want := Scan(z)
		var emitted []string
		got, err := ScanStream(context.Background(), strings.NewReader(text), func(d string) error {
			emitted = append(emitted, d)
			return nil
		})
		if err != nil {
			t.Fatalf("zone %d: ScanStream: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("zone %d: ScanStream = %+v, Scan = %+v", i, got, want)
		}
		if len(emitted) != len(want.IDNs) {
			t.Errorf("zone %d: emitted %d IDNs, want %d", i, len(emitted), len(want.IDNs))
		}
	}
}

func TestScanStreamNoOrigin(t *testing.T) {
	if _, err := ScanStream(context.Background(), strings.NewReader("a IN NS b.\n"), nil); !errors.Is(err, ErrNoOrigin) {
		t.Fatalf("err = %v, want ErrNoOrigin", err)
	}
	if _, err := ScanStream(context.Background(), strings.NewReader(""), nil); !errors.Is(err, ErrNoOrigin) {
		t.Fatalf("empty input err = %v, want ErrNoOrigin", err)
	}
}

func TestScanStreamCancellation(t *testing.T) {
	// A zone big enough to cross several cancel-poll intervals.
	var sb strings.Builder
	sb.WriteString("$ORIGIN com.\n")
	for i := 0; i < 4*cancelCheckInterval; i++ {
		fmt.Fprintf(&sb, "d%06d IN NS ns1.example.\n", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScanStream(ctx, strings.NewReader(sb.String()), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScanStreamEmitError(t *testing.T) {
	boom := errors.New("boom")
	text := "$ORIGIN com.\nxn--pple-43d IN NS ns1.example.\n"
	_, err := ScanStream(context.Background(), strings.NewReader(text), func(string) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

// TestScanStreamMemoryShape is a coarse guard that the stream does not
// accumulate records: a zone with many records per owner must keep the
// seen-set at the distinct-SLD count.
func TestScanStreamCollapsesDuplicates(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN org.\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "shared IN NS ns%d.example.\n", i)
	}
	st, err := ScanStream(context.Background(), strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.SLDCount != 1 {
		t.Fatalf("SLDCount = %d, want 1", st.SLDCount)
	}
}

// FuzzScanStream cross-checks the streaming scan against the
// materialized one on arbitrary inputs, via the canonical Write form
// (single leading $ORIGIN, where the two are contractually identical).
func FuzzScanStream(f *testing.F) {
	f.Add(sampleZone)
	f.Add("$ORIGIN com.\nxn--pple-43d IN NS ns1.example.\n")
	f.Add("$ORIGIN xn--fiqs8s.\nabc IN NS ns.\n")
	f.Fuzz(func(t *testing.T, input string) {
		z, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := z.Write(&buf); err != nil {
			t.Fatal(err)
		}
		canonical := buf.String()
		want := Scan(z)
		got, err := ScanStream(context.Background(), strings.NewReader(canonical), nil)
		if err != nil {
			t.Fatalf("ScanStream failed on canonical zone: %v\n%s", err, canonical)
		}
		if got.Origin != want.Origin || got.SLDCount != want.SLDCount ||
			!reflect.DeepEqual(got.IDNs, want.IDNs) {
			t.Fatalf("ScanStream = %+v, Scan = %+v\n%s", got, want, canonical)
		}
	})
}
