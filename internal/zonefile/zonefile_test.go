package zonefile

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

const sampleZone = `; com zone snapshot (test fixture)
$ORIGIN com.
$TTL 86400
example IN NS ns1.example-dns.net.
example IN NS ns2.example-dns.net.
xn--0wwy37b IN NS ns1.parking.com.
another 3600 IN NS ns.other.net.
ns1.glued IN A 192.0.2.1
glued IN NS ns1.glued
absolute.com. IN NS ns9.example.
outside.org. IN NS ns1.ignored.
`

func TestParseSample(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "com" {
		t.Errorf("Origin = %q", z.Origin)
	}
	if z.DefaultTTL != 86400 {
		t.Errorf("DefaultTTL = %d", z.DefaultTTL)
	}
	if len(z.Records) != 8 {
		t.Fatalf("record count = %d, want 8", len(z.Records))
	}
	if z.Records[3].TTL != 3600 {
		t.Errorf("explicit TTL not parsed: %+v", z.Records[3])
	}
	if z.Records[4].Type != "A" || z.Records[4].Data != "192.0.2.1" {
		t.Errorf("glue record wrong: %+v", z.Records[4])
	}
}

func TestSLDs(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	got := z.SLDs()
	want := []string{
		"absolute.com", "another.com", "example.com",
		"glued.com", "xn--0wwy37b.com",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SLDs = %v, want %v", got, want)
	}
}

func TestScanFindsIDNs(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	st := Scan(z)
	if st.SLDCount != 5 {
		t.Errorf("SLDCount = %d, want 5", st.SLDCount)
	}
	if len(st.IDNs) != 1 || st.IDNs[0] != "xn--0wwy37b.com" {
		t.Errorf("IDNs = %v", st.IDNs)
	}
}

func TestScanITLDZoneAllIDN(t *testing.T) {
	const itldZone = `$ORIGIN xn--fiqs8s.
$TTL 3600
xn--fiq228c IN NS ns1.cnnic.cn.
xn--55qx5d IN NS ns2.cnnic.cn.
`
	st, err := ScanReader(strings.NewReader(itldZone))
	if err != nil {
		t.Fatal(err)
	}
	if st.SLDCount != 2 || len(st.IDNs) != 2 {
		t.Errorf("iTLD scan: %+v — every SLD under an iTLD is an IDN", st)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"no-origin", "example IN NS ns1.x.\n", ErrNoOrigin},
		{"bad-origin-args", "$ORIGIN\n", ErrSyntax},
		{"bad-ttl", "$ORIGIN com.\n$TTL abc\n", ErrSyntax},
		{"short-record", "$ORIGIN com.\nexample NS\n", ErrSyntax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	in := "; header\n\n$ORIGIN net.\n\na IN NS b.c. ; trailing comment\n"
	z, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Records) != 1 || z.Records[0].Data != "b.c." {
		t.Errorf("records = %+v", z.Records)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	z := &Zone{
		Origin:     "net",
		DefaultTTL: 3600,
		Records: []Record{
			{Owner: "example", Type: "NS", Data: "ns1.host.com."},
			{Owner: "xn--0wwy37b", TTL: 60, Type: "NS", Data: "ns.park.io."},
			{Owner: "deep.label", Type: "A", Data: "192.0.2.7"},
		},
	}
	var buf bytes.Buffer
	if err := z.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(z, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, z)
	}
}

func TestRoundTripPropertyRandomZones(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	randLabel := func() string {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	for trial := 0; trial < 50; trial++ {
		z := &Zone{Origin: randLabel(), DefaultTTL: uint32(r.Intn(100000))}
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			rec := Record{
				Owner: randLabel(),
				Type:  []string{"NS", "A", "AAAA", "DS"}[r.Intn(4)],
				Data:  "ns" + randLabel() + ".example.net.",
			}
			if r.Intn(2) == 0 {
				rec.TTL = uint32(1 + r.Intn(86400))
			}
			z.Records = append(z.Records, rec)
		}
		var buf bytes.Buffer
		if err := z.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if z.DefaultTTL == 0 {
			back.DefaultTTL = 0 // $TTL 0 is omitted on write by design
		}
		if !reflect.DeepEqual(z, back) {
			t.Fatalf("trial %d round trip mismatch", trial)
		}
	}
}

func TestSLDsDedupe(t *testing.T) {
	in := "$ORIGIN com.\nfoo IN NS a.\nfoo IN NS b.\nFOO IN NS c.\n"
	z, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := z.SLDs(); len(got) != 1 || got[0] != "foo.com" {
		t.Errorf("SLDs = %v", got)
	}
}

func TestApexIgnored(t *testing.T) {
	in := "$ORIGIN com.\n@ IN NS root-ns.\ncom. IN NS other.\n"
	z, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := z.SLDs(); len(got) != 0 {
		t.Errorf("apex records should not yield SLDs, got %v", got)
	}
}

func BenchmarkParseLargeZone(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN com.\n$TTL 86400\n")
	for i := 0; i < 10000; i++ {
		sb.WriteString("domain")
		sb.WriteString(strings.Repeat("x", i%5))
		sb.WriteString(" IN NS ns1.example.net.\n")
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	z, err := Parse(strings.NewReader(sampleZone))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(z)
	}
}
