package zonefile

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"idnlab/internal/idna"
)

// Streaming ingestion. Parse materializes every record of a zone before
// anything can be scanned — fine for the synthetic fixtures, fatal for
// real TLD snapshots (the paper scanned 154M SLDs across com/net/org).
// Scanner walks a zone record by record with O(1) memory, and ScanStream
// runs the SLD/IDN discovery on top of it holding only the set of
// distinct SLD names — records, glue and payloads are never resident.

// Scanner reads a zone incrementally. Typical use:
//
//	s := zonefile.NewScanner(r)
//	for s.Next() {
//	    rec := s.Record()
//	    ...
//	}
//	if err := s.Err(); err != nil { ... }
//
// Unlike Parse, which applies the zone's final $ORIGIN to every record,
// Scanner interprets directives positionally: Origin reports the value
// in effect at the current record (the streaming-correct reading; the
// two agree on any zone in canonical Write form, where $ORIGIN leads).
type Scanner struct {
	sc     *bufio.Scanner
	origin string
	ttl    uint32
	rec    Record
	line   int
	err    error
}

// NewScanner builds a streaming reader over a master-format zone.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{sc: newLineScanner(r)}
}

// Next advances to the following record, interpreting $ORIGIN and $TTL
// directives along the way. It returns false at end of input or on
// error; Err disambiguates.
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.line++
		line := s.sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "$ORIGIN":
			if len(fields) != 2 {
				s.err = fmt.Errorf("%w: line %d: $ORIGIN wants one argument", ErrSyntax, s.line)
				return false
			}
			s.origin = strings.TrimSuffix(strings.ToLower(fields[1]), ".")
			continue
		case "$TTL":
			if len(fields) != 2 {
				s.err = fmt.Errorf("%w: line %d: $TTL wants one argument", ErrSyntax, s.line)
				return false
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				s.err = fmt.Errorf("%w: line %d: bad TTL %q", ErrSyntax, s.line, fields[1])
				return false
			}
			s.ttl = uint32(ttl)
			continue
		}
		rec, err := parseRecord(fields)
		if err != nil {
			s.err = fmt.Errorf("%w: line %d: %v", ErrSyntax, s.line, err)
			return false
		}
		s.rec = rec
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("zonefile: read: %w", err)
	}
	return false
}

// Record returns the record produced by the last successful Next.
func (s *Scanner) Record() Record { return s.rec }

// Origin returns the zone origin in effect ("" until an $ORIGIN
// directive has been read).
func (s *Scanner) Origin() string { return s.origin }

// DefaultTTL returns the $TTL value in effect.
func (s *Scanner) DefaultTTL() uint32 { return s.ttl }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// cancelCheckInterval is how many records ScanStream processes between
// context polls.
const cancelCheckInterval = 512

// ScanStream runs the discovery scan (distinct SLDs, IDN subset — the
// paper's "searched substring xn-- in TLDs" step) over a zone without
// materializing its records. Memory is O(distinct SLDs), not O(records):
// glue, payloads and duplicate owners are folded away as the stream
// passes. If emit is non-nil it is called once per newly discovered IDN
// SLD in encounter order, feeding streaming pipelines; the returned
// ScanStats is identical to Scan(Parse(r)) for single-$ORIGIN zones
// (IDNs sorted).
//
// ctx cancellation aborts the scan between records with ctx.Err().
func ScanStream(ctx context.Context, r io.Reader, emit func(domain string) error) (ScanStats, error) {
	s := NewScanner(r)
	seen := make(map[string]struct{})
	// Owners read before the $ORIGIN directive cannot be resolved to
	// SLD names yet; hold the owners (only) until the origin appears.
	var preOrigin []string
	var st ScanStats
	itld := false

	flush := func(owner string) error {
		label, ok := sldLabel(st.Origin, owner)
		if !ok {
			return nil
		}
		name := label + "." + st.Origin
		if _, dup := seen[name]; dup {
			return nil
		}
		seen[name] = struct{}{}
		if itld || idna.IsIDN(name) {
			st.IDNs = append(st.IDNs, name)
			if emit != nil {
				return emit(name)
			}
		}
		return nil
	}

	n := 0
	for s.Next() {
		n++
		if n%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return ScanStats{}, err
			}
		}
		owner := s.Record().Owner
		if s.Origin() == "" {
			preOrigin = append(preOrigin, owner)
			continue
		}
		if st.Origin == "" {
			st.Origin = s.Origin()
			itld = idna.IsACELabel(st.Origin)
			for _, o := range preOrigin {
				if err := flush(o); err != nil {
					return ScanStats{}, err
				}
			}
			preOrigin = nil
		}
		if err := flush(owner); err != nil {
			return ScanStats{}, err
		}
	}
	if err := s.Err(); err != nil {
		return ScanStats{}, err
	}
	if err := ctx.Err(); err != nil {
		return ScanStats{}, err
	}
	if s.Origin() == "" {
		return ScanStats{}, ErrNoOrigin
	}
	if st.Origin == "" {
		// The $ORIGIN directive arrived after the last record (or the
		// zone has no records): resolve any held owners against it.
		st.Origin = s.Origin()
		itld = idna.IsACELabel(st.Origin)
		for _, o := range preOrigin {
			if err := flush(o); err != nil {
				return ScanStats{}, err
			}
		}
	}
	st.SLDCount = len(seen)
	sort.Strings(st.IDNs)
	return st, nil
}
