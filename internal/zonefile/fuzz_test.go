package zonefile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse ensures the parser never panics and that every successfully
// parsed zone survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sampleZone)
	f.Add("$ORIGIN com.\n")
	f.Add("$ORIGIN com.\n$TTL 60\nx IN NS y.\n")
	f.Add("; only a comment\n")
	f.Add("$TTL\n")
	f.Add("$ORIGIN a.\nb 4294967295 IN A 1.2.3.4\n")
	f.Fuzz(func(t *testing.T, input string) {
		z, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := z.Write(&buf); err != nil {
			t.Fatalf("parsed zone cannot be written: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, buf.String())
		}
		if back.Origin != z.Origin || len(back.Records) != len(z.Records) {
			t.Fatalf("round trip changed shape: %d vs %d records", len(back.Records), len(z.Records))
		}
		_ = Scan(z) // must not panic on any parsed zone
	})
}
