// Package zonefile reads and writes the subset of the DNS master-file
// format (RFC 1035 §5) that TLD zone files use, and scans zones for
// second-level domains. This is the ingestion path of the whole study: the
// paper extracted 1.47M IDNs by scanning 154M SLDs across the com, net and
// org zones plus 53 iTLD zones, matching the "xn--" ACE prefix.
package zonefile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"idnlab/internal/idna"
)

// Record is one resource record of a zone.
type Record struct {
	// Owner is the owner name relative to the zone origin (no trailing
	// dot), e.g. "example" in the com zone.
	Owner string
	// TTL is the time-to-live in seconds; 0 means "use the zone default".
	TTL uint32
	// Type is the RR type mnemonic (NS, A, AAAA, DS...).
	Type string
	// Data is the record payload, e.g. the name-server target.
	Data string
}

// Zone is a parsed TLD zone.
type Zone struct {
	// Origin is the zone apex without the trailing dot, e.g. "com" or
	// "xn--fiqs8s".
	Origin string
	// DefaultTTL is the $TTL directive value.
	DefaultTTL uint32
	// Records holds the resource records in file order.
	Records []Record
}

// Errors returned by Parse.
var (
	// ErrNoOrigin reports a zone file without an $ORIGIN directive.
	ErrNoOrigin = errors.New("zonefile: missing $ORIGIN directive")
	// ErrSyntax reports a malformed line.
	ErrSyntax = errors.New("zonefile: syntax error")
)

// Parse reads a zone from r. Supported syntax: $ORIGIN and $TTL
// directives, ';' comments, blank lines, and records of the form
// "owner [ttl] [IN] type data...". Owner names may be absolute (trailing
// dot) or relative to the origin.
func Parse(r io.Reader) (*Zone, error) {
	z := &Zone{}
	sc := newLineScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: $ORIGIN wants one argument", ErrSyntax, lineNo)
			}
			z.Origin = strings.TrimSuffix(strings.ToLower(fields[1]), ".")
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: $TTL wants one argument", ErrSyntax, lineNo)
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad TTL %q", ErrSyntax, lineNo, fields[1])
			}
			z.DefaultTTL = uint32(ttl)
			continue
		}
		rec, err := parseRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo, err)
		}
		z.Records = append(z.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zonefile: read: %w", err)
	}
	if z.Origin == "" {
		return nil, ErrNoOrigin
	}
	return z, nil
}

// newLineScanner builds the line reader shared by Parse and Scanner,
// with headroom for long record lines.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return sc
}

// parseRecord interprets "owner [ttl] [IN] type data...".
func parseRecord(fields []string) (Record, error) {
	if len(fields) < 3 {
		return Record{}, errors.New("record needs owner, type and data")
	}
	rec := Record{Owner: strings.ToLower(fields[0])}
	i := 1
	if ttl, err := strconv.ParseUint(fields[i], 10, 32); err == nil {
		rec.TTL = uint32(ttl)
		i++
	}
	if i < len(fields) && strings.EqualFold(fields[i], "IN") {
		i++
	}
	if i >= len(fields) {
		return Record{}, errors.New("record missing type")
	}
	rec.Type = strings.ToUpper(fields[i])
	i++
	if i >= len(fields) {
		return Record{}, errors.New("record missing data")
	}
	rec.Data = strings.Join(fields[i:], " ")
	return rec, nil
}

// Write serializes the zone in canonical form: $ORIGIN, $TTL, then records
// in file order.
func (z *Zone) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "$ORIGIN %s.\n", z.Origin); err != nil {
		return fmt.Errorf("zonefile: write: %w", err)
	}
	if z.DefaultTTL > 0 {
		if _, err := fmt.Fprintf(bw, "$TTL %d\n", z.DefaultTTL); err != nil {
			return fmt.Errorf("zonefile: write: %w", err)
		}
	}
	for _, rec := range z.Records {
		var err error
		if rec.TTL > 0 {
			_, err = fmt.Fprintf(bw, "%s %d IN %s %s\n", rec.Owner, rec.TTL, rec.Type, rec.Data)
		} else {
			_, err = fmt.Fprintf(bw, "%s IN %s %s\n", rec.Owner, rec.Type, rec.Data)
		}
		if err != nil {
			return fmt.Errorf("zonefile: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("zonefile: flush: %w", err)
	}
	return nil
}

// SLDs returns the distinct second-level domains delegated by the zone
// ("<label>.<origin>"), sorted. Multi-label owners (glue like
// ns1.example) contribute their top label only; absolute owner names
// outside the origin are ignored.
func (z *Zone) SLDs() []string {
	set := make(map[string]struct{}, len(z.Records))
	for _, rec := range z.Records {
		label, ok := z.sldLabel(rec.Owner)
		if !ok {
			continue
		}
		set[label+"."+z.Origin] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// sldLabel extracts the delegated label from an owner name.
func (z *Zone) sldLabel(owner string) (string, bool) {
	return sldLabel(z.Origin, owner)
}

// sldLabel extracts the delegated label from an owner name relative to
// origin — shared by the materialized (Zone.SLDs) and streaming
// (ScanStream) paths.
func sldLabel(origin, owner string) (string, bool) {
	if owner == "" || owner == "@" {
		return "", false
	}
	if strings.HasSuffix(owner, ".") {
		// Absolute: must end with ".<origin>."
		trimmed := strings.TrimSuffix(owner, ".")
		suffix := "." + origin
		if !strings.HasSuffix(trimmed, suffix) {
			return "", false
		}
		trimmed = strings.TrimSuffix(trimmed, suffix)
		if trimmed == "" {
			return "", false
		}
		owner = trimmed
	}
	// Relative, possibly multi-label (glue): keep the label closest to
	// the origin.
	if i := strings.LastIndexByte(owner, '.'); i >= 0 {
		owner = owner[i+1:]
	}
	if owner == "" {
		return "", false
	}
	return owner, true
}

// ScanStats summarizes one zone scan — a row of the paper's Table I.
type ScanStats struct {
	// Origin is the zone scanned.
	Origin string
	// SLDCount is the number of distinct delegated SLDs.
	SLDCount int
	// IDNs holds the discovered IDN SLDs (ACE form), sorted.
	IDNs []string
}

// Scan extracts the SLD population and the IDN subset from a zone — the
// paper's discovery step ("we searched substring xn-- in TLDs"). For iTLD
// zones (IDN origin), every SLD is an IDN by construction.
func Scan(z *Zone) ScanStats {
	slds := z.SLDs()
	st := ScanStats{Origin: z.Origin, SLDCount: len(slds)}
	itld := idna.IsACELabel(z.Origin)
	for _, d := range slds {
		if itld || idna.IsIDN(d) {
			st.IDNs = append(st.IDNs, d)
		}
	}
	return st
}

// ScanReader parses and scans in one step, for streaming pipelines.
func ScanReader(r io.Reader) (ScanStats, error) {
	z, err := Parse(r)
	if err != nil {
		return ScanStats{}, err
	}
	return Scan(z), nil
}
