package browser

import (
	"strings"

	"idnlab/internal/idna"
)

// Platform is an operating-system family in the survey.
type Platform string

// Platforms covered by Table XI.
const (
	PlatformPC      Platform = "PC"
	PlatformIOS     Platform = "iOS"
	PlatformAndroid Platform = "Android"
)

// ITLDSupport describes how a browser handles internationalized TLDs.
type ITLDSupport int

// iTLD support levels observed in Table XI.
const (
	// ITLDFull accepts both Unicode and Punycode TLDs.
	ITLDFull ITLDSupport = iota + 1
	// ITLDNeedPrefix accepts an iTLD only with a protocol prefix
	// ("http://") — the Firefox behaviour.
	ITLDNeedPrefix
	// ITLDUnicodeOnly accepts only the Unicode TLD form.
	ITLDUnicodeOnly
	// ITLDPunycodeOnly accepts only the ACE TLD form.
	ITLDPunycodeOnly
	// ITLDNone rejects iTLDs entirely (Baidu on Android).
	ITLDNone
)

var itldNames = map[ITLDSupport]string{
	ITLDFull:         "",
	ITLDNeedPrefix:   "Need prefix",
	ITLDUnicodeOnly:  "Unicode only",
	ITLDPunycodeOnly: "Punycode only",
	ITLDNone:         "Not supported",
}

// String returns the Table XI cell text ("" for full support).
func (s ITLDSupport) String() string { return itldNames[s] }

// Profile describes one surveyed browser build.
type Profile struct {
	// Name and Version identify the browser ("Chrome", "62.0").
	Name    string
	Version string
	// Platform is where the build runs.
	Platform Platform
	// Policy is the IDN display policy in the address bar.
	Policy Policy
	// TitleInAddressBar reports the mobile behaviour of showing the web
	// page title instead of the URL — which lets an attacker display a
	// brand domain as the "address".
	TitleInAddressBar bool
	// AboutBlankOnSuspicious reports the QQ-Android behaviour of
	// navigating suspicious IDNs to about:blank.
	AboutBlankOnSuspicious bool
	// ITLD is the browser's iTLD support level.
	ITLD ITLDSupport
}

// Outcome is a Table XI homograph-attack cell.
type Outcome int

// Outcomes, in increasing order of user risk.
const (
	// OutcomeSafe: homographic IDNs display in Punycode (blank cell).
	OutcomeSafe Outcome = iota + 1
	// OutcomeAlert: Unicode plus a warning (IE 11).
	OutcomeAlert
	// OutcomeAboutBlank: certain homographic IDNs lead to a blank page.
	OutcomeAboutBlank
	// OutcomeTitle: page titles shown in the address bar.
	OutcomeTitle
	// OutcomeBypassed: certain homographs (whole-script confusables)
	// display in Unicode.
	OutcomeBypassed
	// OutcomeVulnerable: homographic IDNs display in Unicode.
	OutcomeVulnerable
)

var outcomeNames = map[Outcome]string{
	OutcomeSafe:       "",
	OutcomeAlert:      "Alert",
	OutcomeAboutBlank: "about:blank",
	OutcomeTitle:      "Title",
	OutcomeBypassed:   "Bypassed",
	OutcomeVulnerable: "Vulnerable",
}

// String returns the Table XI cell text ("" for safe).
func (o Outcome) String() string { return outcomeNames[o] }

// Attack corpus: the two homograph shapes the survey probes with.
const (
	// mixedScriptAttack replaces one Latin letter with a Cyrillic
	// homoglyph — the 2017 apple.com attack shape.
	mixedScriptAttack = "аpple.com"
	// wholeScriptAttack is entirely Cyrillic and mimics soso.com — the
	// shape that bypasses the single-script policy.
	wholeScriptAttack = "ѕоѕо.com"
)

// Evaluate derives the Table XI homograph cell for a profile by actually
// running its display policy against the two attack shapes.
func Evaluate(p Profile) Outcome {
	if p.AboutBlankOnSuspicious {
		return OutcomeAboutBlank
	}
	if p.TitleInAddressBar {
		return OutcomeTitle
	}
	_, mixed := DisplayDomain(p.Policy, mixedScriptAttack)
	_, whole := DisplayDomain(p.Policy, wholeScriptAttack)
	switch {
	case mixed == RenderUnicodeWithAlert || whole == RenderUnicodeWithAlert:
		return OutcomeAlert
	case mixed == RenderUnicode:
		return OutcomeVulnerable
	case whole == RenderUnicode:
		return OutcomeBypassed
	default:
		return OutcomeSafe
	}
}

// NavigateITLD reports whether the profile accepts a domain under an iTLD,
// given the input form the user typed. unicodeTLD reports whether the TLD
// was typed in Unicode (vs Punycode); withPrefix whether a protocol prefix
// was present.
func NavigateITLD(p Profile, unicodeTLD, withPrefix bool) bool {
	switch p.ITLD {
	case ITLDFull:
		return true
	case ITLDNeedPrefix:
		return withPrefix
	case ITLDUnicodeOnly:
		return unicodeTLD
	case ITLDPunycodeOnly:
		return !unicodeTLD
	case ITLDNone:
		return false
	}
	return false
}

// Survey returns the ten-browser, three-platform matrix of Table XI.
// Policies are assigned so that Evaluate reproduces each published cell.
func Survey() []Profile {
	return []Profile{
		// PC.
		{Name: "Chrome", Version: "62.0", Platform: PlatformPC, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Firefox", Version: "57.0", Platform: PlatformPC, Policy: PolicySingleScript, ITLD: ITLDNeedPrefix},
		{Name: "Opera", Version: "49.0", Platform: PlatformPC, Policy: PolicySingleScript, ITLD: ITLDFull},
		{Name: "Safari", Version: "11.0", Platform: PlatformPC, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "IE", Version: "11.0", Platform: PlatformPC, Policy: PolicyAlert, ITLD: ITLDFull},
		{Name: "QQ", Version: "9.7", Platform: PlatformPC, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Baidu", Version: "8.7", Platform: PlatformPC, Policy: PolicySingleScript, ITLD: ITLDFull},
		{Name: "Qihoo 360", Version: "9.1", Platform: PlatformPC, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Sogou", Version: "7.1", Platform: PlatformPC, Policy: PolicyAlwaysUnicode, ITLD: ITLDFull},
		{Name: "Liebao", Version: "6.5", Platform: PlatformPC, Policy: PolicySingleScript, ITLD: ITLDFull},
		// iOS.
		{Name: "Chrome", Version: "61.0", Platform: PlatformIOS, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Firefox", Version: "10.1", Platform: PlatformIOS, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Opera", Version: "16.0", Platform: PlatformIOS, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Safari", Version: "11.0", Platform: PlatformIOS, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "QQ", Version: "7.9", Platform: PlatformIOS, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDUnicodeOnly},
		{Name: "Baidu", Version: "4.10", Platform: PlatformIOS, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDUnicodeOnly},
		{Name: "Qihoo 360", Version: "4.0", Platform: PlatformIOS, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDFull},
		{Name: "Sogou", Version: "5.10", Platform: PlatformIOS, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDFull},
		{Name: "Liebao", Version: "4.18", Platform: PlatformIOS, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDUnicodeOnly},
		// Android.
		{Name: "Chrome", Version: "61.0", Platform: PlatformAndroid, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "Firefox", Version: "57.0", Platform: PlatformAndroid, Policy: PolicySingleScript, ITLD: ITLDNeedPrefix},
		{Name: "Opera", Version: "43.0", Platform: PlatformAndroid, Policy: PolicyRestricted, ITLD: ITLDFull},
		{Name: "QQ", Version: "8.0", Platform: PlatformAndroid, Policy: PolicyRestricted, AboutBlankOnSuspicious: true, ITLD: ITLDUnicodeOnly},
		{Name: "Baidu", Version: "6.4", Platform: PlatformAndroid, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDNone},
		{Name: "Qihoo 360", Version: "8.2", Platform: PlatformAndroid, Policy: PolicyRestricted, ITLD: ITLDPunycodeOnly},
		{Name: "Sogou", Version: "5.9", Platform: PlatformAndroid, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDUnicodeOnly},
		{Name: "Liebao", Version: "5.22", Platform: PlatformAndroid, Policy: PolicyRestricted, TitleInAddressBar: true, ITLD: ITLDFull},
	}
}

// SurveyRow is one rendered row of the Table XI reproduction.
type SurveyRow struct {
	Browser  string
	Platform Platform
	Version  string
	ITLDCell string
	Attack   string
}

// RunSurvey evaluates every profile and returns the rendered matrix rows.
func RunSurvey() []SurveyRow {
	profiles := Survey()
	rows := make([]SurveyRow, 0, len(profiles))
	for _, p := range profiles {
		rows = append(rows, SurveyRow{
			Browser:  p.Name,
			Platform: p.Platform,
			Version:  p.Version,
			ITLDCell: p.ITLD.String(),
			Attack:   Evaluate(p).String(),
		})
	}
	return rows
}

// VulnerableCount counts profiles whose attack outcome displays Unicode
// for at least some homograph (Vulnerable or Bypassed), per platform.
func VulnerableCount(platform Platform) int {
	n := 0
	for _, p := range Survey() {
		if p.Platform != platform {
			continue
		}
		switch Evaluate(p) {
		case OutcomeVulnerable, OutcomeBypassed:
			n++
		}
	}
	return n
}

// ACEForDisplay is a convenience that returns what the address bar shows
// for a raw user input under the profile's policy, converting through
// IDNA as a real browser would.
func ACEForDisplay(p Profile, input string) string {
	uni, err := idna.ToUnicode(strings.TrimPrefix(input, "http://"))
	if err != nil {
		return input
	}
	shown, _ := DisplayDomain(p.Policy, uni)
	return shown
}
