package browser

import (
	"idnlab/internal/confusables"
	"idnlab/internal/idna"
)

// Policy effectiveness evaluation — an extension of Table XI. The paper
// concludes that "policies based on the diversity of character sets are
// not enough to prevent IDN abuse" (§VIII); this harness quantifies that:
// each display policy is run against a generated homograph corpus and a
// legitimate-IDN corpus, yielding its block rate and its collateral
// damage on genuine internationalized names.

// Effectiveness summarizes one policy's performance.
type Effectiveness struct {
	// Policy under evaluation.
	Policy Policy
	// AttackCorpus and LegitCorpus are the evaluated population sizes.
	AttackCorpus int
	LegitCorpus  int
	// Blocked is the number of attack domains rendered in Punycode (the
	// user sees the xn-- form and is not deceived).
	Blocked int
	// Collateral is the number of legitimate IDNs rendered in Punycode
	// (genuine users lose their native-script display).
	Collateral int
}

// BlockRate returns the fraction of attacks neutralized.
func (e Effectiveness) BlockRate() float64 {
	if e.AttackCorpus == 0 {
		return 0
	}
	return float64(e.Blocked) / float64(e.AttackCorpus)
}

// CollateralRate returns the fraction of legitimate IDNs degraded.
func (e Effectiveness) CollateralRate() float64 {
	if e.LegitCorpus == 0 {
		return 0
	}
	return float64(e.Collateral) / float64(e.LegitCorpus)
}

// AttackCorpus generates homographic attack labels for the given brand
// labels: every single-substitution confusable variant.
func AttackCorpus(brandLabels []string) []string {
	tab := confusables.Default()
	var out []string
	for _, label := range brandLabels {
		out = append(out, tab.Variants(label)...)
	}
	return out
}

// LegitimateCorpus is a fixed set of genuine IDN labels across the
// scripts the paper's corpus covers, used to measure collateral damage.
var LegitimateCorpus = []string{
	"中国", "波色", "娱乐城", "商城", "北京",
	"日本語", "ひらがな", "アニメ",
	"한국어", "쇼핑몰",
	"ไทยแลนด์",
	"почта", "пример", "новости",
	"bücher", "größe", "münchen",
	"château", "société",
	"señor", "educación",
	"alışveriş", "türkçe",
	"مرحبا",
}

// EvaluatePolicy measures one policy against the two corpora.
func EvaluatePolicy(p Policy, attacks, legit []string) Effectiveness {
	e := Effectiveness{Policy: p, AttackCorpus: len(attacks), LegitCorpus: len(legit)}
	for _, label := range attacks {
		if r := DisplayLabel(p, label); r == RenderPunycode {
			e.Blocked++
		}
	}
	for _, label := range legit {
		if r := DisplayLabel(p, label); r == RenderPunycode {
			e.Collateral++
		}
	}
	return e
}

// EvaluateAllPolicies runs the effectiveness harness over every policy
// with an attack corpus built from the given brand labels.
func EvaluateAllPolicies(brandLabels []string) []Effectiveness {
	attacks := AttackCorpus(brandLabels)
	// Only keep attack labels that are real IDNs (encodable, non-ASCII).
	valid := attacks[:0]
	for _, a := range attacks {
		if _, err := idna.ToASCIILabel(a); err == nil {
			valid = append(valid, a)
		}
	}
	policies := []Policy{
		PolicyAlwaysUnicode, PolicySingleScript, PolicyRestricted,
		PolicyAlwaysPunycode, PolicyAlert,
	}
	out := make([]Effectiveness, 0, len(policies))
	for _, p := range policies {
		out = append(out, EvaluatePolicy(p, valid, LegitimateCorpus))
	}
	return out
}
