package browser

import (
	"testing"
)

var effBrands = []string{"google", "facebook", "apple", "amazon", "paypal"}

func TestEvaluateAllPoliciesOrdering(t *testing.T) {
	results := EvaluateAllPolicies(effBrands)
	byPolicy := make(map[Policy]Effectiveness, len(results))
	for _, e := range results {
		byPolicy[e.Policy] = e
	}

	// Block-rate ordering: always-unicode blocks nothing; single-script
	// blocks most mixed-script attacks; restricted blocks strictly more
	// (whole-script confusables too); always-punycode blocks everything.
	au := byPolicy[PolicyAlwaysUnicode]
	ss := byPolicy[PolicySingleScript]
	re := byPolicy[PolicyRestricted]
	ap := byPolicy[PolicyAlwaysPunycode]
	al := byPolicy[PolicyAlert]

	if au.BlockRate() != 0 {
		t.Errorf("always-unicode block rate = %v", au.BlockRate())
	}
	if !(ss.BlockRate() > au.BlockRate()) {
		t.Error("single-script should beat always-unicode")
	}
	if !(re.BlockRate() >= ss.BlockRate()) {
		t.Errorf("restricted (%v) should be at least single-script (%v)",
			re.BlockRate(), ss.BlockRate())
	}
	if ap.BlockRate() != 1 {
		t.Errorf("always-punycode block rate = %v", ap.BlockRate())
	}
	// The paper's §VIII point: even the restricted policy does not reach
	// 100% without breaking legitimate IDNs... but single-substitution
	// Latin-diacritic attacks are all single-script Latin, which both
	// script policies display. Verify the gap exists.
	if ss.BlockRate() > 0.9 {
		t.Errorf("single-script blocks %v of attacks; diacritic attacks should slip through",
			ss.BlockRate())
	}

	// Collateral: script-based policies must not break legitimate IDNs;
	// always-punycode breaks all of them (the IETF objection).
	if ss.CollateralRate() != 0 {
		t.Errorf("single-script collateral = %v", ss.CollateralRate())
	}
	if re.CollateralRate() != 0 {
		t.Errorf("restricted collateral = %v", re.CollateralRate())
	}
	if ap.CollateralRate() != 1 {
		t.Errorf("always-punycode collateral = %v", ap.CollateralRate())
	}
	if al.BlockRate() != 0 {
		// Alert renders Unicode (with a warning), so nothing is
		// "blocked" in the display sense.
		t.Errorf("alert block rate = %v", al.BlockRate())
	}
}

func TestAttackCorpusNonEmpty(t *testing.T) {
	corpus := AttackCorpus(effBrands)
	if len(corpus) < 100 {
		t.Fatalf("attack corpus only %d labels", len(corpus))
	}
	for _, a := range corpus[:20] {
		ascii := true
		for _, r := range a {
			if r >= 0x80 {
				ascii = false
			}
		}
		if ascii {
			t.Errorf("attack label %q is pure ASCII", a)
		}
	}
}

func TestLegitimateCorpusAllDisplayUnderRestricted(t *testing.T) {
	// Sanity anchor for the collateral metric: every legitimate label
	// must render in Unicode under the restricted policy.
	for _, label := range LegitimateCorpus {
		if got := DisplayLabel(PolicyRestricted, label); got != RenderUnicode {
			t.Errorf("legitimate %q renders %v under restricted policy", label, got)
		}
	}
}

func BenchmarkEvaluateAllPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EvaluateAllPolicies(effBrands)
	}
}
