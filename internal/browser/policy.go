// Package browser implements IDN display policies and the browser-survey
// matrix of the paper's Table XI.
//
// Browsers decide, per label, whether to show an IDN in Unicode or in its
// Punycode form. The policies implemented here are the real algorithms the
// paper surveyed: always-Unicode (the vulnerable Sogou PC behaviour),
// Mozilla's single-script display algorithm (bypassable by whole-script
// confusables such as "ѕоѕо"), Chrome's restricted variant with a
// whole-script-confusable check, always-Punycode, and IE 11's alerting
// behaviour. Package-level profiles encode the ten browsers on three
// platforms exactly as Table XI reports them, and Evaluate reproduces the
// table's outcome cells from the policies.
package browser

import (
	"strings"

	"idnlab/internal/confusables"
	"idnlab/internal/idna"
	"idnlab/internal/uniscript"
)

// Policy is an IDN display algorithm.
type Policy int

// Policies surveyed by the paper.
const (
	// PolicyAlwaysUnicode displays every IDN in Unicode. Vulnerable to
	// any homograph.
	PolicyAlwaysUnicode Policy = iota + 1
	// PolicySingleScript displays Unicode iff every label's code points
	// come from one script plus Common/Inherited — Mozilla's IDN display
	// algorithm.
	PolicySingleScript
	// PolicyRestricted is single-script plus a whole-script-confusable
	// check: a non-Latin label whose confusable skeleton is pure ASCII
	// and differs from the label itself is shown as Punycode — Chrome's
	// post-2017 policy.
	PolicyRestricted
	// PolicyAlwaysPunycode never displays Unicode.
	PolicyAlwaysPunycode
	// PolicyAlert displays Unicode but raises a user-visible warning for
	// labels with non-ASCII characters — the IE 11 behaviour the paper
	// recommends.
	PolicyAlert
)

var policyNames = map[Policy]string{
	PolicyAlwaysUnicode:  "always-unicode",
	PolicySingleScript:   "single-script",
	PolicyRestricted:     "restricted",
	PolicyAlwaysPunycode: "always-punycode",
	PolicyAlert:          "alert",
}

// String names the policy.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return "unknown"
}

// Rendering is how an address bar presents a domain.
type Rendering int

// Rendering outcomes.
const (
	// RenderUnicode shows the Unicode form.
	RenderUnicode Rendering = iota + 1
	// RenderPunycode shows the ACE form.
	RenderPunycode
	// RenderUnicodeWithAlert shows Unicode plus a security warning.
	RenderUnicodeWithAlert
)

// DisplayLabel decides the rendering of one Unicode label under a policy.
func DisplayLabel(p Policy, label string) Rendering {
	a := uniscript.Analyze(label)
	if a.ASCIIOnly {
		return RenderUnicode
	}
	switch p {
	case PolicyAlwaysUnicode:
		return RenderUnicode
	case PolicyAlwaysPunycode:
		return RenderPunycode
	case PolicyAlert:
		return RenderUnicodeWithAlert
	case PolicySingleScript:
		if a.SingleScript() {
			return RenderUnicode
		}
		return RenderPunycode
	case PolicyRestricted:
		if !a.SingleScript() {
			return RenderPunycode
		}
		if wholeScriptConfusable(label, a) {
			return RenderPunycode
		}
		return RenderUnicode
	}
	return RenderPunycode
}

// wholeScriptConfusable reports whether a single-script non-Latin label
// folds entirely to an ASCII skeleton different from itself — Chrome's
// check that catches "ѕоѕо" even though it is single-script.
func wholeScriptConfusable(label string, a uniscript.Analysis) bool {
	if a.Dominant() == uniscript.Latin {
		return false
	}
	skel := confusables.Default().Skeleton(label)
	if skel == label {
		return false
	}
	for _, r := range skel {
		if r >= 0x80 {
			return false
		}
	}
	return true
}

// DisplayDomain renders a whole Unicode-form domain: if any label renders
// as Punycode, the entire domain is shown in ACE form (matching shipping
// browser behaviour); an alert on any label alerts the domain.
func DisplayDomain(p Policy, domain string) (shown string, r Rendering) {
	labels := strings.Split(strings.TrimSuffix(domain, "."), ".")
	worst := RenderUnicode
	for _, label := range labels {
		switch DisplayLabel(p, label) {
		case RenderPunycode:
			worst = RenderPunycode
		case RenderUnicodeWithAlert:
			if worst == RenderUnicode {
				worst = RenderUnicodeWithAlert
			}
		}
	}
	switch worst {
	case RenderPunycode:
		ace, err := idna.ToASCII(domain)
		if err != nil {
			// Undisplayable and unencodable: show the raw input escaped.
			return domain, RenderPunycode
		}
		return ace, RenderPunycode
	default:
		return domain, worst
	}
}
