package browser

import (
	"strings"
	"testing"
)

func TestDisplayLabelASCIIAlwaysUnicode(t *testing.T) {
	for _, p := range []Policy{PolicyAlwaysUnicode, PolicySingleScript, PolicyRestricted, PolicyAlwaysPunycode, PolicyAlert} {
		if got := DisplayLabel(p, "example"); got != RenderUnicode {
			t.Errorf("policy %v: ASCII label rendered %v", p, got)
		}
	}
}

func TestDisplayLabelMixedScript(t *testing.T) {
	// "аpple" mixes Cyrillic and Latin.
	cases := []struct {
		policy Policy
		want   Rendering
	}{
		{PolicyAlwaysUnicode, RenderUnicode},
		{PolicySingleScript, RenderPunycode},
		{PolicyRestricted, RenderPunycode},
		{PolicyAlwaysPunycode, RenderPunycode},
		{PolicyAlert, RenderUnicodeWithAlert},
	}
	for _, tc := range cases {
		if got := DisplayLabel(tc.policy, "аpple"); got != tc.want {
			t.Errorf("policy %v: got %v, want %v", tc.policy, got, tc.want)
		}
	}
}

func TestDisplayLabelWholeScriptConfusable(t *testing.T) {
	// "ѕоѕо" is single-script Cyrillic: Mozilla's policy shows Unicode
	// (the bypass), Chrome's restricted policy catches it.
	if got := DisplayLabel(PolicySingleScript, "ѕоѕо"); got != RenderUnicode {
		t.Errorf("single-script policy should be bypassed, got %v", got)
	}
	if got := DisplayLabel(PolicyRestricted, "ѕоѕо"); got != RenderPunycode {
		t.Errorf("restricted policy should catch whole-script confusable, got %v", got)
	}
}

func TestDisplayLabelLegitimateIDNStaysUnicode(t *testing.T) {
	// Real-language labels must keep displaying in Unicode under every
	// non-punycode policy — the IETF requirement the paper cites against
	// the always-punycode fix.
	for _, label := range []string{"中国", "日本語", "한국어", "bücher", "почта"} {
		for _, p := range []Policy{PolicySingleScript, PolicyRestricted} {
			if got := DisplayLabel(p, label); got != RenderUnicode {
				t.Errorf("policy %v renders legitimate %q as %v", p, label, got)
			}
		}
	}
}

func TestRestrictedAllowsNonConfusableCyrillic(t *testing.T) {
	// "почта" contains Cyrillic letters with no full ASCII skeleton, so
	// the whole-script-confusable check must not fire.
	if got := DisplayLabel(PolicyRestricted, "почта"); got != RenderUnicode {
		t.Errorf("почта rendered %v", got)
	}
}

func TestDisplayDomain(t *testing.T) {
	shown, r := DisplayDomain(PolicySingleScript, "аpple.com")
	if r != RenderPunycode {
		t.Fatalf("rendering = %v", r)
	}
	if shown != "xn--pple-43d.com" {
		t.Errorf("shown = %q", shown)
	}
	shown, r = DisplayDomain(PolicySingleScript, "ѕоѕо.com")
	if r != RenderUnicode || shown != "ѕоѕо.com" {
		t.Errorf("whole-script: shown %q rendering %v", shown, r)
	}
}

func TestEvaluateMatchesTableXI(t *testing.T) {
	// Every published cell of Table XI's homograph columns.
	want := map[string]Outcome{
		"Chrome/PC":         OutcomeSafe,
		"Firefox/PC":        OutcomeBypassed,
		"Opera/PC":          OutcomeBypassed,
		"Safari/PC":         OutcomeSafe,
		"IE/PC":             OutcomeAlert,
		"QQ/PC":             OutcomeSafe,
		"Baidu/PC":          OutcomeBypassed,
		"Qihoo 360/PC":      OutcomeSafe,
		"Sogou/PC":          OutcomeVulnerable,
		"Liebao/PC":         OutcomeBypassed,
		"Chrome/iOS":        OutcomeSafe,
		"Firefox/iOS":       OutcomeSafe,
		"Opera/iOS":         OutcomeSafe,
		"Safari/iOS":        OutcomeSafe,
		"QQ/iOS":            OutcomeTitle,
		"Baidu/iOS":         OutcomeTitle,
		"Qihoo 360/iOS":     OutcomeTitle,
		"Sogou/iOS":         OutcomeTitle,
		"Liebao/iOS":        OutcomeTitle,
		"Chrome/Android":    OutcomeSafe,
		"Firefox/Android":   OutcomeBypassed,
		"Opera/Android":     OutcomeSafe,
		"QQ/Android":        OutcomeAboutBlank,
		"Baidu/Android":     OutcomeTitle,
		"Qihoo 360/Android": OutcomeSafe,
		"Sogou/Android":     OutcomeTitle,
		"Liebao/Android":    OutcomeTitle,
	}
	seen := 0
	for _, p := range Survey() {
		key := p.Name + "/" + string(p.Platform)
		wantOut, ok := want[key]
		if !ok {
			t.Errorf("unexpected profile %s", key)
			continue
		}
		seen++
		if got := Evaluate(p); got != wantOut {
			t.Errorf("%s: outcome = %v, want %v", key, got, wantOut)
		}
	}
	if seen != len(want) {
		t.Errorf("survey covered %d profiles, want %d", seen, len(want))
	}
}

func TestSurveyShape(t *testing.T) {
	profiles := Survey()
	perPlatform := map[Platform]int{}
	for _, p := range profiles {
		perPlatform[p.Platform]++
	}
	// Table XI: 10 PC browsers, 9 on iOS (no IE), 8 on Android (no
	// Safari/IE).
	if perPlatform[PlatformPC] != 10 || perPlatform[PlatformIOS] != 9 || perPlatform[PlatformAndroid] != 8 {
		t.Errorf("per-platform counts = %v", perPlatform)
	}
}

func TestVulnerableCounts(t *testing.T) {
	// Paper: "five browsers on PC and one on Android are vulnerable"
	// (displaying certain homographic IDNs in Unicode).
	if got := VulnerableCount(PlatformPC); got != 5 {
		t.Errorf("PC vulnerable = %d, want 5", got)
	}
	if got := VulnerableCount(PlatformAndroid); got != 1 {
		t.Errorf("Android vulnerable = %d, want 1", got)
	}
	if got := VulnerableCount(PlatformIOS); got != 0 {
		t.Errorf("iOS vulnerable = %d, want 0", got)
	}
}

func TestNavigateITLD(t *testing.T) {
	cases := []struct {
		support    ITLDSupport
		unicodeTLD bool
		withPrefix bool
		want       bool
	}{
		{ITLDFull, true, false, true},
		{ITLDFull, false, false, true},
		{ITLDNeedPrefix, true, false, false},
		{ITLDNeedPrefix, true, true, true},
		{ITLDUnicodeOnly, true, false, true},
		{ITLDUnicodeOnly, false, false, false},
		{ITLDPunycodeOnly, false, false, true},
		{ITLDPunycodeOnly, true, false, false},
		{ITLDNone, true, true, false},
		{ITLDNone, false, true, false},
	}
	for _, tc := range cases {
		p := Profile{ITLD: tc.support}
		if got := NavigateITLD(p, tc.unicodeTLD, tc.withPrefix); got != tc.want {
			t.Errorf("NavigateITLD(%v, uni=%v, prefix=%v) = %v, want %v",
				tc.support, tc.unicodeTLD, tc.withPrefix, got, tc.want)
		}
	}
}

func TestRunSurveyRowsComplete(t *testing.T) {
	rows := RunSurvey()
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	for _, r := range rows {
		if r.Browser == "" || r.Version == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
}

func TestACEForDisplay(t *testing.T) {
	chrome := Profile{Policy: PolicyRestricted}
	if got := ACEForDisplay(chrome, "http://xn--pple-43d.com"); got != "xn--pple-43d.com" {
		t.Errorf("chrome shows %q", got)
	}
	sogou := Profile{Policy: PolicyAlwaysUnicode}
	if got := ACEForDisplay(sogou, "xn--pple-43d.com"); got != "аpple.com" {
		t.Errorf("sogou shows %q", got)
	}
}

func TestPolicyAndOutcomeStrings(t *testing.T) {
	if PolicyRestricted.String() != "restricted" || Policy(0).String() != "unknown" {
		t.Error("policy names wrong")
	}
	if OutcomeVulnerable.String() != "Vulnerable" || OutcomeSafe.String() != "" {
		t.Error("outcome names wrong")
	}
	if !strings.Contains(ITLDNeedPrefix.String(), "prefix") {
		t.Error("iTLD names wrong")
	}
}

func BenchmarkDisplayDomainRestricted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = DisplayDomain(PolicyRestricted, "ѕоѕо.com")
	}
}

func BenchmarkEvaluateSurvey(b *testing.B) {
	profiles := Survey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			_ = Evaluate(p)
		}
	}
}
