package watch

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Alert is one confirmed finding pushed to subscribers: a changed name
// that imitates a watched brand. (Serial, Domain) is the dedup key —
// the stream applies each delta serial to each name at most once, so a
// consumer replaying after a crash detects duplicates by remembering
// the keys it has already delivered.
type Alert struct {
	Serial  uint32  `json:"serial"`
	Op      string  `json:"op"`
	Domain  string  `json:"domain"` // ACE FQDN, e.g. "xn--pple-43d.com"
	Unicode string  `json:"unicode"`
	Brand   string  `json:"brand"`
	SSIM    float64 `json:"ssim"`
	Subs    int     `json:"subs"` // subscriber count at match time
}

// Key returns the at-least-once dedup key.
func (a Alert) Key() string { return fmt.Sprintf("%d/%s", a.Serial, a.Domain) }

// Alert log file format:
//
//	magic "IDNALOG1" (8 bytes)
//	frame*: u32le payloadLen | u32le crc32c(payload) | payload (JSON Alert)
//
// Appends are group-committed: Append enqueues a frame and returns; a
// single committer goroutine drains whatever has accumulated into one
// write+fsync. Under concurrent load batches form naturally — while one
// fsync is in flight the next batch builds up — so throughput scales
// with writers while every alert still hits stable storage before
// Sync() releases its caller. Cursors are plain byte offsets: a frame
// is replayable iff its last byte is below the durable size.
const (
	logMagic = "IDNALOG1"
	// maxFrame bounds a single alert payload; anything larger in a file
	// is corruption, not data, and replay stops there.
	maxFrame = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fsyncDisabled turns every fsync into a no-op. Test-only (the replay
// fuzzer churns through thousands of throwaway logs where durability
// is irrelevant); production code never sets it.
var fsyncDisabled = false

func syncFile(f *os.File) error {
	if fsyncDisabled {
		return nil
	}
	return f.Sync()
}

// AlertLogStats is a point-in-time snapshot of the log's counters.
type AlertLogStats struct {
	Appended uint64 `json:"appended"` // frames enqueued
	Durable  uint64 `json:"durable"`  // frames on stable storage
	Commits  uint64 `json:"commits"`  // write+fsync batches issued
	MaxBatch int    `json:"maxBatch"` // largest frames-per-commit seen
	Size     int64  `json:"size"`     // durable file size in bytes
}

// AvgBatch reports the mean frames per commit.
func (s AlertLogStats) AvgBatch() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Durable) / float64(s.Commits)
}

// AlertLog is a durable append-only alert sink with group commit.
type AlertLog struct {
	f    *os.File
	mu   sync.Mutex
	cond *sync.Cond

	pending  []byte // encoded frames awaiting commit
	pendingN int    // frame count in pending
	spare    []byte // recycled buffer for the next batch

	enqueued uint64
	durable  uint64
	size     int64 // durable file size (= replay cursor bound)
	commits  uint64
	maxBatch int

	err     error // sticky I/O error; the log is dead once set
	closing bool
	done    chan struct{}
}

// OpenAlertLog opens (or creates) the log at path, verifies the magic,
// truncates any torn tail frame left by a crash mid-commit, and starts
// the committer. The returned log's Size() is the recovered durable
// offset.
func OpenAlertLog(path string) (*AlertLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := recoverLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &AlertLog{f: f, size: size, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.commitLoop()
	return l, nil
}

// recoverLog validates the magic (writing it into an empty file),
// scans frames, and truncates the file at the first incomplete or
// corrupt one — a crash between write and fsync can leave a torn tail,
// and a torn frame was by definition never acknowledged to anyone.
func recoverLog(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if info.Size() == 0 {
		if _, err := f.Write([]byte(logMagic)); err != nil {
			return 0, err
		}
		if err := syncFile(f); err != nil {
			return 0, err
		}
		return int64(len(logMagic)), nil
	}
	var magic [len(logMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != logMagic {
		return 0, fmt.Errorf("watch: %s is not an alert log (bad magic)", f.Name())
	}
	off := int64(len(logMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn header: truncate here
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFrame {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		off += 8 + int64(n)
	}
	if off < info.Size() {
		if err := f.Truncate(off); err != nil {
			return 0, err
		}
		if err := syncFile(f); err != nil {
			return 0, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	return off, nil
}

// Append encodes a and enqueues it for the next group commit. It
// returns once the frame is queued, not once it is durable — call
// Sync() before acting on durability (advancing an input cursor,
// acknowledging upstream).
func (l *AlertLog) Append(a Alert) error {
	payload, err := json.Marshal(a)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("watch: alert frame %d bytes exceeds limit", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closing {
		return errors.New("watch: alert log closed")
	}
	if l.pending == nil && l.spare != nil {
		l.pending, l.spare = l.spare[:0], nil
	}
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, payload...)
	l.pendingN++
	l.enqueued++
	l.cond.Broadcast() // wake the committer
	return nil
}

// Sync blocks until every frame enqueued before the call is on stable
// storage (or the log has failed). This is the durability barrier the
// daemon issues before advancing its input cursor: alerts first, cursor
// second, which is exactly what makes delivery at-least-once.
func (l *AlertLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.enqueued
	for l.durable < target && l.err == nil {
		l.cond.Wait()
	}
	return l.err
}

// Size returns the durable byte size — the replay cursor covering every
// acknowledged alert.
func (l *AlertLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the log's counters.
func (l *AlertLog) Stats() AlertLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return AlertLogStats{
		Appended: l.enqueued,
		Durable:  l.durable,
		Commits:  l.commits,
		MaxBatch: l.maxBatch,
		Size:     l.size,
	}
}

// Close drains pending frames, stops the committer and closes the file.
func (l *AlertLog) Close() error {
	l.mu.Lock()
	if l.closing {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closing = true
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// commitLoop is the single committer: it swaps out whatever frames have
// accumulated, writes them in one syscall, fsyncs, and publishes the
// new durable watermark. One fsync covers every frame in the batch —
// that amortization is the entire point of group commit.
func (l *AlertLog) commitLoop() {
	defer close(l.done)
	l.mu.Lock()
	for {
		for l.pendingN == 0 && !l.closing && l.err == nil {
			l.cond.Wait()
		}
		if l.err != nil || (l.closing && l.pendingN == 0) {
			l.mu.Unlock()
			return
		}
		buf, n := l.pending, l.pendingN
		l.pending, l.pendingN = nil, 0
		l.mu.Unlock()

		_, werr := l.f.Write(buf)
		if werr == nil {
			werr = syncFile(l.f)
		}

		l.mu.Lock()
		if werr != nil {
			l.err = werr
		} else {
			l.size += int64(len(buf))
			l.durable += uint64(n)
			l.commits++
			if n > l.maxBatch {
				l.maxBatch = n
			}
			l.spare = buf[:0]
		}
		l.cond.Broadcast()
	}
}

// ReplayAlertLog reads alerts from path starting at byte offset from
// (offsets below the magic are clamped to the first frame) and calls fn
// with each alert and the offset just past its frame — the cursor to
// persist for resuming after that alert. Scanning stops without error
// at the first torn or corrupt frame (an unacknowledged tail); I/O
// failures and a bad magic are errors. Returns the offset scanning
// stopped at.
func ReplayAlertLog(path string, from int64, fn func(off int64, a Alert) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var magic [len(logMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != logMagic {
		return 0, fmt.Errorf("watch: %s is not an alert log (bad magic)", path)
	}
	off := int64(len(logMagic))
	if from > off {
		info, err := f.Stat()
		if err != nil {
			return 0, err
		}
		if from > info.Size() {
			// A cursor past the end means acknowledged alerts are gone
			// (wrong file, or a log truncated below the cursor) — that
			// is data loss, not a clean resume.
			return 0, fmt.Errorf("watch: replay cursor %d past log size %d", from, info.Size())
		}
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return 0, err
		}
		off = from
	}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFrame {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return off, nil
		}
		var a Alert
		if err := json.Unmarshal(payload, &a); err != nil {
			return off, fmt.Errorf("watch: frame at %d: checksum ok but payload invalid: %w", off, err)
		}
		off += 8 + int64(n)
		if err := fn(off, a); err != nil {
			return off, err
		}
	}
}
