// Package watch is the streaming zone-delta tier: it parses day-over-day
// zone deltas (IXFR-style master files, the format internal/zonegen
// emits), matches every changed name against a standing table of
// per-brand subscriptions compiled through the candidate index, and
// hands confirmed findings to a durable alert log. The design goal is
// that a single node saturates on delta I/O, not on matching: the hot
// loop is a handful of O(1) hash probes with zero allocations
// steady-state, never an O(subscriptions) sweep.
package watch

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"idnlab/internal/zonefile"
)

// Op classifies one delta operation.
type Op uint8

const (
	// OpAdd is a new registration.
	OpAdd Op = iota
	// OpDrop is a deleted registration.
	OpDrop
	// OpNSChange is a re-delegation: same owner, new name servers.
	OpNSChange
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDrop:
		return "drop"
	case OpNSChange:
		return "nschange"
	}
	return "unknown"
}

// Event is one parsed delta operation: a single owner changed in a
// single zone. Owner is the registered label in wire (ACE) form, Origin
// the zone it changed in.
type Event struct {
	Serial uint32
	Op     Op
	Owner  string
	Origin string
	NS     string // new NS target (add, nschange)
	OldNS  string // previous NS target (drop, nschange)
}

// Domain returns the fully qualified name without the trailing dot.
func (e Event) Domain() string { return e.Owner + "." + e.Origin }

// Delta is one parsed day-over-day zone delta: every event from every
// zone section of one delta file, in file order (per zone: drops, then
// NS changes, then adds — the order the generator commits them).
type Delta struct {
	Serial uint32
	Events []Event
}

// zoneAccum collects one zone's IXFR sections while scanning.
type zoneAccum struct {
	origin   string
	serial   uint32
	soaCount int
	delOrder []string
	dels     map[string]string // owner -> old NS target
	addOrder []string
	adds     map[string]string // owner -> new NS target
}

// nsTarget strips the ns1./ns2. host prefix and the trailing dot from an
// NS record's data, leaving the provider zone ("dns-host.net"). Unknown
// shapes are passed through un-stripped rather than rejected: the
// matcher only needs a stable token per provider.
func nsTarget(data string) string {
	data = strings.TrimSuffix(data, ".")
	if rest, ok := strings.CutPrefix(data, "ns1."); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(data, "ns2."); ok {
		return rest
	}
	return data
}

// soaSerial extracts the serial (third field) from SOA record data.
func soaSerial(data string) (uint32, error) {
	fields := strings.Fields(data)
	if len(fields) != 7 {
		return 0, fmt.Errorf("watch: malformed SOA data %q", data)
	}
	n, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("watch: bad SOA serial %q: %w", fields[2], err)
	}
	return uint32(n), nil
}

// flush classifies the accumulated zone sections into events: an owner
// present in both sections is an NS change, deletion-only owners are
// drops, addition-only owners are adds. Events are appended in the
// generator's commit order (deletion section order first, then
// remaining additions), which keeps parse → replay byte-deterministic.
func (z *zoneAccum) flush(events []Event) ([]Event, error) {
	if z == nil || z.soaCount == 0 {
		return events, nil
	}
	if z.soaCount != 3 {
		return events, fmt.Errorf("watch: zone %s: %d SOA records, want 3 (header, old, new)", z.origin, z.soaCount)
	}
	for _, owner := range z.delOrder {
		old := z.dels[owner]
		if ns, changed := z.adds[owner]; changed {
			events = append(events, Event{Serial: z.serial, Op: OpNSChange, Owner: owner, Origin: z.origin, NS: ns, OldNS: old})
		} else {
			events = append(events, Event{Serial: z.serial, Op: OpDrop, Owner: owner, Origin: z.origin, OldNS: old})
		}
	}
	for _, owner := range z.addOrder {
		if _, wasDel := z.dels[owner]; wasDel {
			continue // already emitted as an NS change
		}
		events = append(events, Event{Serial: z.serial, Op: OpAdd, Owner: owner, Origin: z.origin, NS: z.adds[owner]})
	}
	return events, nil
}

// ParseDelta reads one serialized zone delta (the format DayDelta.WriteTo
// emits — plain RFC 1035 master syntax with IXFR-style SOA sentinels)
// and reconstructs its events. The parser is strict about structure —
// exactly three SOAs per zone, old serial = new−1, a single serial
// across zones — because the alert log's replay guarantees lean on the
// delta stream being well-formed; anything malformed is an error, never
// a panic.
func ParseDelta(r io.Reader) (*Delta, error) {
	s := zonefile.NewScanner(r)
	d := &Delta{}
	var cur *zoneAccum
	for s.Next() {
		rec := s.Record()
		origin := s.Origin()
		if origin == "" {
			return nil, fmt.Errorf("watch: record %s %s before $ORIGIN", rec.Owner, rec.Type)
		}
		if cur == nil || cur.origin != origin {
			var err error
			if d.Events, err = cur.flush(d.Events); err != nil {
				return nil, err
			}
			cur = &zoneAccum{
				origin: origin,
				dels:   make(map[string]string),
				adds:   make(map[string]string),
			}
		}
		switch rec.Type {
		case "SOA":
			serial, err := soaSerial(rec.Data)
			if err != nil {
				return nil, err
			}
			cur.soaCount++
			switch cur.soaCount {
			case 1: // header: the delta's new serial
				cur.serial = serial
				if d.Serial == 0 {
					d.Serial = serial
				} else if serial != d.Serial {
					return nil, fmt.Errorf("watch: zone %s serial %d differs from delta serial %d", origin, serial, d.Serial)
				}
			case 2: // deletion section: the previous serial
				if serial != cur.serial-1 {
					return nil, fmt.Errorf("watch: zone %s deletion serial %d, want %d", origin, serial, cur.serial-1)
				}
			case 3: // addition section: the new serial again
				if serial != cur.serial {
					return nil, fmt.Errorf("watch: zone %s addition serial %d, want %d", origin, serial, cur.serial)
				}
			default:
				return nil, fmt.Errorf("watch: zone %s: more than 3 SOA records", origin)
			}
		case "NS":
			target := nsTarget(rec.Data)
			switch cur.soaCount {
			case 2:
				if _, dup := cur.dels[rec.Owner]; !dup {
					cur.dels[rec.Owner] = target
					cur.delOrder = append(cur.delOrder, rec.Owner)
				}
			case 3:
				if _, dup := cur.adds[rec.Owner]; !dup {
					cur.adds[rec.Owner] = target
					cur.addOrder = append(cur.addOrder, rec.Owner)
				}
			default:
				return nil, fmt.Errorf("watch: zone %s: NS record for %s outside IXFR sections", origin, rec.Owner)
			}
		default:
			return nil, fmt.Errorf("watch: zone %s: unexpected %s record in delta", origin, rec.Type)
		}
	}
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("watch: scan delta: %w", err)
	}
	var err error
	if d.Events, err = cur.flush(d.Events); err != nil {
		return nil, err
	}
	if cur == nil {
		return nil, fmt.Errorf("watch: empty delta")
	}
	return d, nil
}
