package watch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// runPoll builds a Runner over dir/log/cursor, polls once, closes the
// log, and returns the alerts now durable in the log.
func runPoll(t *testing.T, eng *Engine, dir, logPath, cursorPath string) []Alert {
	t.Helper()
	l, err := OpenAlertLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Engine: eng, Log: l, Dir: dir, CursorPath: cursorPath}
	if _, _, err := r.Poll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return replayAll(t, logPath, 0)
}

// TestRunnerPollCursorAdvance: polling processes pending files in
// serial order exactly once; new files picked up on the next poll.
func TestRunnerPollCursorAdvance(t *testing.T) {
	eng, _ := testFixture(t, 80, 4)
	dir := t.TempDir()
	writeDeltaDir(t, dir, 51, attackCfg, 2)

	logPath := filepath.Join(dir, "alerts.log")
	cursorPath := filepath.Join(dir, "cursor.json")
	l, err := OpenAlertLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Engine: eng, Log: l, Dir: dir, CursorPath: cursorPath}

	files, alerts, err := r.Poll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if files != 2 || alerts == 0 {
		t.Fatalf("first poll: %d files, %d alerts", files, alerts)
	}
	c := r.Cursor()
	if c.Serial == 0 || c.LogOffset != l.Size() {
		t.Fatalf("cursor %+v (log size %d)", c, l.Size())
	}

	// Nothing new: poll is a no-op.
	if files, _, err := r.Poll(context.Background()); err != nil || files != 0 {
		t.Fatalf("idle poll: files=%d err=%v", files, err)
	}

	// Day 3 appears; only it is processed.
	writeDeltaDir(t, dir, 51, attackCfg, 3)
	files, _, err = r.Poll(context.Background())
	if err != nil || files != 1 {
		t.Fatalf("poll after day 3: files=%d err=%v", files, err)
	}
	if got := r.Cursor().Serial; got != c.Serial+1 {
		t.Fatalf("cursor serial %d, want %d", got, c.Serial+1)
	}
	l.Close()

	// A fresh runner over the same cursor resumes with nothing to do.
	l2, err := OpenAlertLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Engine: eng, Log: l2, Dir: dir, CursorPath: cursorPath}
	if files, _, err := r2.Poll(context.Background()); err != nil || files != 0 {
		t.Fatalf("resumed poll: files=%d err=%v", files, err)
	}
	l2.Close()
}

// TestRunnerCrashRecovery is the durability acceptance test: kill the
// daemon at an arbitrary byte mid-way through a delta's alert batch
// (simulated by truncating the log to any prefix and rolling the cursor
// back, exactly the state a SIGKILL between fsync and cursor-save
// leaves), restart, and the replayed findings must equal the
// uninterrupted run's — at least once, duplicates detectable by key.
func TestRunnerCrashRecovery(t *testing.T) {
	eng, _ := testFixture(t, 80, 4)
	dir := t.TempDir()
	writeDeltaDir(t, dir, 51, attackCfg, 3)

	// Reference: one uninterrupted run over all three days.
	refLog := filepath.Join(dir, "ref.log")
	ref := runPoll(t, eng, dir, refLog, filepath.Join(dir, "ref-cursor.json"))
	if len(ref) < 6 {
		t.Fatalf("reference run too thin: %d alerts", len(ref))
	}
	refKeys := make([]string, len(ref))
	for i, a := range ref {
		refKeys[i] = a.Key()
	}

	// Establish the pre-crash state: days 1–2 fully processed.
	liveLog := filepath.Join(dir, "live.log")
	liveCursor := filepath.Join(dir, "live-cursor.json")
	{
		l, err := OpenAlertLog(liveLog)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Engine: eng, Log: l, Dir: dir, CursorPath: liveCursor}
		if _, err := r.ProcessFile(context.Background(), filepath.Join(dir, "delta-2017080101.zone")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ProcessFile(context.Background(), filepath.Join(dir, "delta-2017080102.zone")); err != nil {
			t.Fatal(err)
		}
		// Day 3's alerts land in the log...
		if _, err := r.ProcessFile(context.Background(), filepath.Join(dir, "delta-2017080103.zone")); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	day2, err := LoadCursor(liveCursor)
	if err != nil {
		t.Fatal(err)
	}
	fullBytes, err := os.ReadFile(liveLog)
	if err != nil {
		t.Fatal(err)
	}
	day2 = Cursor{Serial: day2.Serial - 1, LogOffset: cursorOffsetAfterSerial(t, liveLog, day2.Serial-1)}

	// Crash at every interesting byte: before any day-3 frame, inside
	// the first frame, at frame boundaries, inside the last frame.
	cuts := []int64{day2.LogOffset, day2.LogOffset + 3}
	var bounds []int64
	if _, err := ReplayAlertLog(liveLog, day2.LogOffset, func(off int64, a Alert) error {
		bounds = append(bounds, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(bounds) < 2 {
		t.Fatalf("day 3 produced %d alerts; need >= 2 for a meaningful crash test", len(bounds))
	}
	cuts = append(cuts, bounds[0], bounds[0]+5, bounds[len(bounds)-2], int64(len(fullBytes))-1)

	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			crashLog := filepath.Join(dir, fmt.Sprintf("crash-%d.log", cut))
			crashCursor := filepath.Join(dir, fmt.Sprintf("crash-%d-cursor.json", cut))
			if err := os.WriteFile(crashLog, fullBytes[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if err := SaveCursor(crashCursor, day2); err != nil {
				t.Fatal(err)
			}

			// Restart: recovery truncates any torn frame, the cursor
			// says day 2, so day 3 is reprocessed in full.
			got := runPoll(t, eng, dir, crashLog, crashCursor)

			// Dedup by key, preserving first occurrence.
			seen := make(map[string]Alert)
			var keys []string
			dups := 0
			for _, a := range got {
				k := a.Key()
				if prev, ok := seen[k]; ok {
					dups++
					if prev != a {
						t.Errorf("duplicate key %s with different payloads:\n%+v\n%+v", k, prev, a)
					}
					continue
				}
				seen[k] = a
				keys = append(keys, k)
			}
			if len(keys) != len(refKeys) {
				t.Fatalf("recovered run has %d unique alerts, reference %d", len(keys), len(refKeys))
			}
			for i, k := range keys {
				if k != refKeys[i] {
					t.Fatalf("alert %d: key %s, reference %s", i, k, refKeys[i])
				}
				if seen[k] != ref[i] {
					t.Fatalf("alert %s payload differs from reference:\n%+v\n%+v", k, seen[k], ref[i])
				}
			}
			// Survived complete day-3 frames are re-emitted by the
			// replayed delta: duplicates expected exactly then.
			survived := 0
			for _, b := range bounds {
				if b <= cut {
					survived++
				}
			}
			if dups != survived {
				t.Errorf("cut %d: %d duplicates, want %d (frames below cut)", cut, dups, survived)
			}
		})
	}
}

// cursorOffsetAfterSerial replays the log and returns the offset just
// past the last alert of the given serial.
func cursorOffsetAfterSerial(t *testing.T, path string, serial uint32) int64 {
	t.Helper()
	var off int64 = int64(len(logMagic))
	if _, err := ReplayAlertLog(path, 0, func(o int64, a Alert) error {
		if a.Serial <= serial {
			off = o
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return off
}
