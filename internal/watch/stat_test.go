package watch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
	"idnlab/internal/feat"
	"idnlab/internal/zonegen"
)

// statEngine builds the watch stack with the statistical prefilter
// attached to the detector — the configuration `idnwatch -stat` runs.
func statEngine(t *testing.T, topK int, m *feat.Model) *Engine {
	t.Helper()
	list := brands.TopK(topK)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewHomographDetector(0, core.WithIndex(ix), core.WithStatModel(m))
	subs := NewSubTable(len(list))
	for i := range list {
		subs.Subscribe(uint32(i), uint64(1000+i))
	}
	subs.Compile()
	eng, err := NewEngine(det, subs, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineStatGate: with the learned prefilter on, homograph attack
// adds must still alert (the gate may not eat recall on the exact
// population it was trained against), and the pass/shed counters must
// account for every IDN add that reached the gate.
func TestEngineStatGate(t *testing.T) {
	model, _, _, err := feat.TrainCorpus(2018, 50, feat.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng := statEngine(t, 60, model)

	dir := t.TempDir()
	days := writeDeltaDir(t, dir, 31, attackCfg, 1)
	gt := days[0]
	data, err := os.ReadFile(filepath.Join(dir, zonegen.DeltaFileName(gt.Serial)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var alerts []Alert
	if err := eng.ProcessDelta(context.Background(), d, func(a Alert) error {
		alerts = append(alerts, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	byDomain := map[string]bool{}
	for _, a := range alerts {
		byDomain[a.Domain] = true
	}
	attacks, caught := 0, 0
	for _, z := range gt.Zones {
		for _, rec := range z.Records {
			if rec.Op != zonegen.DeltaAdd || rec.Attack != zonegen.AttackHomograph {
				continue
			}
			attacks++
			if byDomain[rec.Owner+"."+z.Origin] {
				caught++
			}
		}
	}
	if attacks == 0 {
		t.Fatal("generator produced no homograph attacks; test is vacuous")
	}
	// The train-time prefilter floor keeps ≥99.5% recall on attack
	// populations; on a one-day delta that means at most a stray miss.
	if float64(caught) < 0.95*float64(attacks) {
		t.Fatalf("prefilter ate recall: %d/%d attacks alerted", caught, attacks)
	}

	st := eng.DetectorStats()
	if !st.StatLoaded {
		t.Fatal("detector stats must report the loaded model")
	}
	if st.PrefilterPass == 0 {
		t.Fatal("no events passed the prefilter, yet alerts fired")
	}
	if st.PrefilterPass+st.PrefilterShed == 0 {
		t.Fatal("gate counters did not move")
	}
}

// TestEngineStatGateSheds: a delta of purely benign churn should be
// mostly shed before the SSIM probe.
func TestEngineStatGateSheds(t *testing.T) {
	model, _, _, err := feat.TrainCorpus(2018, 50, feat.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng := statEngine(t, 60, model)

	dir := t.TempDir()
	benign := zonegen.DeltaConfig{AddsPerDay: 300, DropsPerDay: 30, NSChangesPerDay: 20}
	days := writeDeltaDir(t, dir, 99, benign, 1)
	data, err := os.ReadFile(filepath.Join(dir, zonegen.DeltaFileName(days[0].Serial)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessDelta(context.Background(), d, func(Alert) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := eng.DetectorStats()
	total := st.PrefilterPass + st.PrefilterShed
	if total == 0 {
		t.Fatal("no IDN adds reached the gate; test is vacuous")
	}
	if st.PrefilterShed == 0 {
		t.Fatalf("benign churn shed nothing (pass=%d shed=%d)", st.PrefilterPass, st.PrefilterShed)
	}
}
