package watch

import (
	"context"
	"strings"
	"sync/atomic"

	"idnlab/internal/core"
	"idnlab/internal/idna"
	"idnlab/internal/pipeline"
)

// EngineConfig parameterizes the streaming match engine.
type EngineConfig struct {
	// Workers is the match fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// Batch is the pipeline dispatch granularity; <= 0 selects the
	// pipeline default (32). Delta events are µs-scale work items, so
	// batched dispatch is what keeps channel overhead off the hot path.
	Batch int
	// Buffer bounds the in-flight batches; <= 0 selects the pipeline
	// default.
	Buffer int
}

// Engine streams delta events through a pipeline of matcher workers and
// filters the results down to alerts: events whose label imitates a
// brand that at least one subscriber is watching. Verdict order is
// input order (the pipeline's fan-in guarantee), which makes a run's
// alert sequence deterministic — the property the crash-recovery tests
// lean on.
type Engine struct {
	pipe *pipeline.Engine[Event, Alert, *Matcher]
	subs *SubTable
	det  *core.HomographDetector

	matched    atomic.Uint64 // events whose label hit a watched brand
	unwatched  atomic.Uint64 // matches suppressed: no subscriber
	decodeErrs atomic.Uint64 // ACE owners that failed punycode decode
}

// NewEngine builds the engine around an index-backed detector (see
// NewMatcher) and a subscription table.
func NewEngine(det *core.HomographDetector, subs *SubTable, cfg EngineConfig) (*Engine, error) {
	proto, err := NewMatcher(det)
	if err != nil {
		return nil, err
	}
	e := &Engine{subs: subs, det: det}
	e.pipe = pipeline.New(
		pipeline.Config{Stage: "watch", Workers: cfg.Workers, Batch: cfg.Batch, Buffer: cfg.Buffer},
		proto.Clone,
		e.process,
	)
	return e, nil
}

// process is the per-event pipeline Func. Drops are ignored (a deleted
// name threatens nobody); ASCII owners are skipped without probing (an
// ASCII label cannot be a homograph — same fast-path rule as
// DetectNormalized); IDN owners are decoded and matched. A match only
// becomes an alert if the brand has subscribers in the current
// snapshot.
func (e *Engine) process(m *Matcher, ev Event) (Alert, bool, error) {
	if ev.Op == OpDrop || !strings.HasPrefix(ev.Owner, "xn--") {
		return Alert{}, false, nil
	}
	label, err := idna.ToUnicodeLabel(ev.Owner)
	if err != nil {
		e.decodeErrs.Add(1)
		return Alert{}, false, nil
	}
	// Learned prefilter: with a statistical model attached to the
	// detector, score the label once (the owner IS the ACE label; the
	// origin is the zone) and shed low-suspicion churn before the SSIM
	// probe — the same gate the serving tier applies, with the same
	// pass/shed counters surfacing at /metrics.
	if sm := m.det.StatModel(); sm != nil {
		raw := sm.ScoreLabel(label, ev.Owner, strings.TrimSuffix(ev.Origin, "."))
		if !m.det.AdmitStat(raw) {
			return Alert{}, false, nil
		}
	}
	match, ok := m.Match(label)
	if !ok {
		return Alert{}, false, nil
	}
	e.matched.Add(1)
	subs := e.subs.Snapshot().Count(match.BrandID)
	if subs == 0 {
		e.unwatched.Add(1)
		return Alert{}, false, nil
	}
	return Alert{
		Serial:  ev.Serial,
		Op:      ev.Op.String(),
		Domain:  ev.Domain(),
		Unicode: label + "." + ev.Origin,
		Brand:   match.Brand,
		SSIM:    match.SSIM,
		Subs:    subs,
	}, true, nil
}

// ProcessDelta streams one parsed delta's events through the match
// pipeline, calling emit for every alert in event order.
func (e *Engine) ProcessDelta(ctx context.Context, d *Delta, emit func(Alert) error) error {
	return e.pipe.Stream(ctx, pipeline.FromSlice(d.Events), emit)
}

// Metrics snapshots the underlying pipeline stage (in/out/backlog/
// utilization across all deltas processed so far).
func (e *Engine) Metrics() pipeline.Metrics { return e.pipe.Metrics() }

// Counters reports the engine's own filters: total matches, matches
// suppressed for lack of subscribers, and undecodable owners.
func (e *Engine) Counters() (matched, unwatched, decodeErrs uint64) {
	return e.matched.Load(), e.unwatched.Load(), e.decodeErrs.Load()
}

// DetectorStats snapshots the detector family's shared counters
// (bounded-rescore early exits, statistical prefilter pass/shed),
// aggregated across every matcher clone.
func (e *Engine) DetectorStats() core.DetectorStats { return e.det.Stats() }
