package watch

import (
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
	"idnlab/internal/zonegen"
)

// testCatalogDetector builds an index-backed detector over the top-k
// real brand catalog.
func testCatalogDetector(t testing.TB, k int) (*core.HomographDetector, []brands.Brand) {
	t.Helper()
	list := brands.TopK(k)
	ix, err := candidx.Build(list, candidx.BuildOptions{})
	if err != nil {
		t.Fatalf("candidx.Build: %v", err)
	}
	return core.NewHomographDetector(0, core.WithIndex(ix)), list
}

func TestNewMatcherRequiresIndex(t *testing.T) {
	det := core.NewHomographDetector(50) // sweep detector, no index
	if _, err := NewMatcher(det); err == nil {
		t.Fatal("NewMatcher accepted an index-less detector")
	}
}

// TestMatcherEquivalence: Match must agree with the detector's own
// DetectNormalized — same hit/miss decision, same brand, same SSIM —
// on a corpus of attack and benign labels from the zone generator.
func TestMatcherEquivalence(t *testing.T) {
	det, _ := testCatalogDetector(t, 200)
	m, err := NewMatcher(det)
	if err != nil {
		t.Fatal(err)
	}
	oracle := det.Clone()

	reg := zonegen.Generate(zonegen.Config{Seed: 21, Scale: 2000})
	checked, hits := 0, 0
	for _, dom := range reg.Domains {
		n, err := core.Normalize(dom.ACE)
		if err != nil || n.ASCII {
			continue
		}
		checked++
		want, wantOK := oracle.DetectNormalized(n)
		got, gotOK := m.Match(n.Label)
		if gotOK != wantOK {
			t.Fatalf("%s: Match ok=%v, DetectNormalized ok=%v", dom.ACE, gotOK, wantOK)
		}
		if !gotOK {
			continue
		}
		hits++
		if got.Brand != want.Brand || got.SSIM != want.SSIM {
			t.Fatalf("%s: Match (%s, %v) != DetectNormalized (%s, %v)",
				dom.ACE, got.Brand, got.SSIM, want.Brand, want.SSIM)
		}
	}
	if checked < 50 || hits == 0 {
		t.Fatalf("corpus too thin: %d IDN labels checked, %d hits", checked, hits)
	}
}

// TestMatcherClone: clones share verdicts but not scratch — a clone
// must produce identical results to the original.
func TestMatcherClone(t *testing.T) {
	det, _ := testCatalogDetector(t, 100)
	m, err := NewMatcher(det)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	labels := []string{"аpple", "gооgle", "example", "аmаzon"}
	for _, l := range labels {
		g1, ok1 := m.Match(l)
		g2, ok2 := c.Match(l)
		if ok1 != ok2 || g1 != g2 {
			t.Fatalf("%q: original (%+v,%v) != clone (%+v,%v)", l, g1, ok1, g2, ok2)
		}
	}
}

// TestMatchZeroAlloc: the hot loop must not allocate steady-state —
// this is the property the bench gate enforces at scale; the unit test
// catches regressions without running the bench.
func TestMatchZeroAlloc(t *testing.T) {
	det, _ := testCatalogDetector(t, 500)
	m, err := NewMatcher(det)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, 0, 32)
	labels = append(labels, "аpple", "miсrosoft", "gооgle", "benign-label", "xn--unrelated")
	reg := zonegen.Generate(zonegen.Config{Seed: 42, Scale: 300})
	for _, dom := range reg.Domains {
		if len(labels) >= 32 {
			break
		}
		n, err := core.Normalize(dom.ACE)
		if err != nil || n.ASCII {
			continue
		}
		labels = append(labels, n.Label)
	}
	// Warm up scratch buffers and glyph caches.
	for i := 0; i < 3; i++ {
		for _, l := range labels {
			m.Match(l)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		m.Match(labels[i%len(labels)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Match allocates %v/op steady-state, want 0", allocs)
	}
}
