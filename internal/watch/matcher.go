package watch

import (
	"fmt"
	"unicode/utf8"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
)

// Matcher decides whether one changed label imitates a watched brand.
// It is the watch tier's hot loop, deliberately built from the same
// pieces as core's index-backed detection so its verdicts are
// bit-identical to DetectNormalized on the same label: probe the
// candidate index (a handful of O(1) hash probes), length-filter the
// candidates, rescore the survivors with the detector's own SSIM Score,
// keep the strict-greater best, apply the compiled threshold.
//
// A Matcher is not safe for concurrent use (the probe scratch and the
// detector's glyph caches are private state); each pipeline worker owns
// a Clone. After warmup, Match allocates nothing.
type Matcher struct {
	det       *core.HomographDetector
	ix        *candidx.Index
	brandList []brands.Brand
	brandLens []int
	threshold float64
	probe     candidx.Probe
}

// Match is one confirmed imitation: the best-scoring watched brand for
// a label at or above the detection threshold.
type Match struct {
	BrandID uint32
	Brand   string // brand domain, e.g. "apple.com"
	SSIM    float64
}

// NewMatcher wraps an index-backed detector. The detector must have
// been built with core.WithIndex and a matching threshold — the watch
// tier refuses to fall back to the O(brands) sweep, because at millions
// of subscriptions the sweep silently turns a streaming tier into a
// batch one.
func NewMatcher(det *core.HomographDetector) (*Matcher, error) {
	ix := det.Index()
	if ix == nil {
		return nil, fmt.Errorf("watch: detector has no candidate index (or index threshold mismatch); the watch hot path requires one")
	}
	list := ix.Brands()
	lens := make([]int, len(list))
	for i, b := range list {
		lens[i] = utf8.RuneCountInString(b.Label())
	}
	return &Matcher{
		det:       det,
		ix:        ix,
		brandList: list,
		brandLens: lens,
		threshold: det.Threshold(),
	}, nil
}

// Clone returns a Matcher for another worker: shares the immutable
// index, catalog and the detector's precomputed reference tables, with
// private scratch.
func (m *Matcher) Clone() *Matcher {
	return &Matcher{
		det:       m.det.Clone(),
		ix:        m.ix,
		brandList: m.brandList,
		brandLens: m.brandLens,
		threshold: m.threshold,
	}
}

// Match scores label (the Unicode form of a changed name's SLD) against
// the watched catalog. Zero allocations steady-state: the index probe
// reuses m's scratch, Score runs on precomputed tables with an
// early-exit floor (see core.ScoreBounded — a candidate only matters if
// it reaches the threshold and beats the best exact score so far), and
// the result is returned by value.
func (m *Matcher) Match(label string) (Match, bool) {
	best := Match{SSIM: -1}
	floor := m.threshold
	labelLen := utf8.RuneCountInString(label)
	for _, id := range m.ix.Candidates(label, &m.probe) {
		i := int(id)
		if diff := labelLen - m.brandLens[i]; diff > 1 || diff < -1 {
			continue
		}
		score, ok := m.det.ScoreBounded(label, m.brandList[i].Label(), floor)
		if ok && score > best.SSIM {
			best.SSIM = score
			best.BrandID = id
			floor = score
		}
	}
	if best.SSIM >= m.threshold {
		best.Brand = m.brandList[best.BrandID].Domain
		return best, true
	}
	return Match{}, false
}

// Brands exposes the matcher's catalog (the index's embedded catalog);
// brand IDs in Match results index into it.
func (m *Matcher) Brands() []brands.Brand { return m.brandList }
