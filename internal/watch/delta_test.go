package watch

import (
	"bytes"
	"strings"
	"testing"

	"idnlab/internal/zonegen"
)

// genDelta renders one zonegen day delta and returns both forms: the
// generator's record list (ground truth) and the serialized bytes.
func genDelta(t testing.TB, seed uint64, cfg zonegen.DeltaConfig, days int) (*zonegen.DayDelta, []byte) {
	t.Helper()
	reg := zonegen.Generate(zonegen.Config{Seed: seed, Scale: 500})
	gen := reg.DeltaStream(cfg)
	var d *zonegen.DayDelta
	for i := 0; i < days; i++ {
		d = gen.Next()
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return d, buf.Bytes()
}

// flattenRecords converts zonegen's ground truth into the event list
// ParseDelta should reconstruct, in the generator's commit order.
func flattenRecords(d *zonegen.DayDelta) []Event {
	var events []Event
	for _, z := range d.Zones {
		for _, rec := range z.Records {
			ev := Event{Serial: d.Serial, Owner: rec.Owner, Origin: z.Origin}
			switch rec.Op {
			case zonegen.DeltaAdd:
				ev.Op, ev.NS = OpAdd, rec.NS
			case zonegen.DeltaDrop:
				ev.Op, ev.OldNS = OpDrop, rec.OldNS
			case zonegen.DeltaNSChange:
				ev.Op, ev.NS, ev.OldNS = OpNSChange, rec.NS, rec.OldNS
			}
			events = append(events, ev)
		}
	}
	return events
}

// TestParseDeltaRoundTrip: ParseDelta must reconstruct exactly the
// operations zonegen committed — op, owner, origin, old and new NS —
// in the same order, for several churn mixes.
func TestParseDeltaRoundTrip(t *testing.T) {
	cfgs := []zonegen.DeltaConfig{
		{},
		{AddsPerDay: 50, DropsPerDay: 20, NSChangesPerDay: 15},
		{AddsPerDay: 5, DropsPerDay: 0, NSChangesPerDay: 0},
		{AddsPerDay: 0, DropsPerDay: 7, NSChangesPerDay: 3},
	}
	for i, cfg := range cfgs {
		gt, data := genDelta(t, uint64(40+i), cfg, 2)
		want := flattenRecords(gt)
		d, err := ParseDelta(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("cfg %d: ParseDelta: %v", i, err)
		}
		if d.Serial != gt.Serial {
			t.Errorf("cfg %d: serial %d, want %d", i, d.Serial, gt.Serial)
		}
		if len(d.Events) != len(want) {
			t.Fatalf("cfg %d: %d events, want %d", i, len(d.Events), len(want))
		}
		for j, ev := range d.Events {
			if ev != want[j] {
				t.Errorf("cfg %d event %d:\n got %+v\nwant %+v", i, j, ev, want[j])
			}
		}
	}
}

// TestParseDeltaFileNameCompat: the runner's filename parser must accept
// exactly what zonegen emits.
func TestParseDeltaFileNameCompat(t *testing.T) {
	for _, serial := range []uint32{1, zonegen.SerialBase + 1, 4294967295} {
		name := zonegen.DeltaFileName(serial)
		got, ok := ParseDeltaFileName(name)
		if !ok || got != serial {
			t.Errorf("ParseDeltaFileName(%q) = %d, %v; want %d, true", name, got, ok, serial)
		}
	}
	for _, bad := range []string{"delta-.zone", "delta-x.zone", "snapshot-001.zone", "delta-001", "delta-99999999999999999999.zone", ""} {
		if _, ok := ParseDeltaFileName(bad); ok {
			t.Errorf("ParseDeltaFileName(%q) accepted", bad)
		}
	}
}

// TestParseDeltaMalformed: structural damage must produce errors, never
// panics and never silently-wrong events.
func TestParseDeltaMalformed(t *testing.T) {
	_, data := genDelta(t, 77, zonegen.DeltaConfig{AddsPerDay: 10, DropsPerDay: 3, NSChangesPerDay: 2}, 1)
	text := string(data)

	cases := map[string]string{
		"empty":             "",
		"no origin":         "foo IN NS ns1.dns-host.net.\n",
		"truncated mid-SOA": text[:strings.Index(text, "SOA")+10],
		"A record":          strings.Replace(text, " IN NS ", " IN A ", 1),
		"bad serial":        strings.Replace(text, " 2017080101 900 ", " notanumber 900 ", 1),
		"extra SOA":         text + "@ IN SOA ns1.registry.example. hostmaster.registry.example. 2017080101 900 300 604800 86400\n",
	}
	for name, input := range cases {
		if _, err := ParseDelta(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ParseDelta accepted malformed input", name)
		}
	}
}

// FuzzDeltaParse: ParseDelta must never panic, and any delta it does
// accept must be structurally sound.
func FuzzDeltaParse(f *testing.F) {
	_, data := genDelta(f, 99, zonegen.DeltaConfig{AddsPerDay: 6, DropsPerDay: 2, NSChangesPerDay: 2}, 1)
	f.Add(string(data))
	f.Add("$ORIGIN com.\n@ IN SOA a. b. 5 900 300 604800 86400\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseDelta(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, ev := range d.Events {
			if ev.Owner == "" || ev.Origin == "" {
				t.Fatalf("accepted delta with empty owner/origin: %+v", ev)
			}
			switch ev.Op {
			case OpAdd:
				if ev.OldNS != "" {
					t.Fatalf("add with OldNS: %+v", ev)
				}
			case OpDrop:
				if ev.NS != "" {
					t.Fatalf("drop with NS: %+v", ev)
				}
			case OpNSChange:
			default:
				t.Fatalf("invalid op %d", ev.Op)
			}
		}
	})
}
