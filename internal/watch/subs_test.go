package watch

import (
	"sort"
	"sync"
	"testing"
)

func sorted(ids []uint64) []uint64 {
	out := append([]uint64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSubTableBasics(t *testing.T) {
	tab := NewSubTable(10)

	// Empty initial snapshot is valid for matching.
	if s := tab.Snapshot(); s == nil || s.Total() != 0 || s.Of(3) != nil && len(s.Of(3)) != 0 {
		t.Fatalf("initial snapshot not empty: %+v", s)
	}

	tab.Subscribe(3, 100)
	tab.Subscribe(3, 101)
	tab.Subscribe(3, 100) // idempotent
	tab.Subscribe(7, 200)
	tab.Subscribe(99, 1) // out of catalog: ignored

	// Mutations are invisible until Compile.
	if got := tab.Snapshot().Count(3); got != 0 {
		t.Fatalf("pre-compile Count(3) = %d, want 0", got)
	}

	snap := tab.Compile()
	if snap.Total() != 3 {
		t.Fatalf("Total = %d, want 3", snap.Total())
	}
	if got := sorted(snap.Of(3)); len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("Of(3) = %v", got)
	}
	if snap.Count(3) != 2 || snap.Count(7) != 1 || snap.Count(0) != 0 || snap.Count(99) != 0 {
		t.Fatalf("counts wrong: %d %d %d %d", snap.Count(3), snap.Count(7), snap.Count(0), snap.Count(99))
	}

	// Old snapshots stay frozen after further mutation + recompile.
	tab.Unsubscribe(3, 100)
	tab.Unsubscribe(3, 555) // unknown: no-op
	snap2 := tab.Compile()
	if snap.Count(3) != 2 {
		t.Fatalf("old snapshot mutated: Count(3) = %d", snap.Count(3))
	}
	if got := snap2.Of(3); len(got) != 1 || got[0] != 101 {
		t.Fatalf("post-unsubscribe Of(3) = %v", got)
	}
	if tab.Snapshot() != snap2 {
		t.Fatal("Snapshot() does not return latest compile")
	}
}

// TestSubTableConcurrent: concurrent subscribe/unsubscribe/compile must
// be race-free (run under -race) and end in a consistent state.
func TestSubTableConcurrent(t *testing.T) {
	tab := NewSubTable(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				brand := uint32((g*500 + i) % 256)
				tab.Subscribe(brand, uint64(g)<<32|uint64(i))
				if i%7 == 0 {
					tab.Compile()
				}
				if i%3 == 0 {
					tab.Unsubscribe(brand, uint64(g)<<32|uint64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	snap := tab.Compile()
	want := 0
	for b := uint32(0); b < 256; b++ {
		want += snap.Count(b)
	}
	if snap.Total() != want {
		t.Fatalf("Total %d != sum of counts %d", snap.Total(), want)
	}
}

// TestSubSnapshotZeroAlloc: the hot-path reads must not allocate.
func TestSubSnapshotZeroAlloc(t *testing.T) {
	tab := NewSubTable(100)
	for i := 0; i < 1000; i++ {
		tab.Subscribe(uint32(i%100), uint64(i))
	}
	snap := tab.Compile()
	allocs := testing.AllocsPerRun(100, func() {
		for b := uint32(0); b < 100; b++ {
			if len(snap.Of(b)) != snap.Count(b) {
				t.Fatal("Of/Count mismatch")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("snapshot reads allocate: %v allocs/run", allocs)
	}
}
