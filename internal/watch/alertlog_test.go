package watch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testAlert(i int) Alert {
	return Alert{
		Serial:  uint32(2017080101 + i/10),
		Op:      "add",
		Domain:  fmt.Sprintf("xn--test%d.com", i),
		Unicode: fmt.Sprintf("tëst%d.com", i),
		Brand:   "example.com",
		SSIM:    0.99,
		Subs:    1 + i%5,
	}
}

func replayAll(t testing.TB, path string, from int64) []Alert {
	t.Helper()
	var out []Alert
	if _, err := ReplayAlertLog(path, from, func(off int64, a Alert) error {
		out = append(out, a)
		return nil
	}); err != nil {
		t.Fatalf("ReplayAlertLog: %v", err)
	}
	return out
}

func TestAlertLogAppendSyncReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.log")
	l, err := OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var mid int64
	for i := 0; i < n; i++ {
		if err := l.Append(testAlert(i)); err != nil {
			t.Fatal(err)
		}
		if i == n/2-1 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			mid = l.Size() // cursor after the first half
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != n || st.Durable != n {
		t.Fatalf("stats %+v, want %d appended+durable", st, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	all := replayAll(t, path, 0)
	if len(all) != n {
		t.Fatalf("replayed %d alerts, want %d", len(all), n)
	}
	for i, a := range all {
		if a != testAlert(i) {
			t.Fatalf("alert %d round-trip mismatch: %+v", i, a)
		}
	}
	tail := replayAll(t, path, mid)
	if len(tail) != n/2 || tail[0] != testAlert(n/2) {
		t.Fatalf("cursor replay from %d: %d alerts, first %+v", mid, len(tail), tail[0])
	}
}

// TestAlertLogRecoverTornTail: truncating the file at every byte
// boundary inside the last frame must recover to exactly the alerts
// whose frames are complete — a torn tail is dropped, never delivered,
// and never blocks reopening.
func TestAlertLogRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	l, err := OpenAlertLog(ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(testAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	full := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Offsets of each complete frame boundary.
	var bounds []int64
	if _, err := ReplayAlertLog(ref, 0, func(off int64, a Alert) error {
		bounds = append(bounds, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bounds[len(bounds)-1] != full {
		t.Fatalf("replay end %d != durable size %d", bounds[len(bounds)-1], full)
	}

	lastStart := bounds[len(bounds)-2]
	for cut := lastStart + 1; cut < full; cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := OpenAlertLog(p)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if rl.Size() != lastStart {
			t.Fatalf("cut %d: recovered size %d, want %d", cut, rl.Size(), lastStart)
		}
		// The log stays appendable after recovery.
		if err := rl.Append(testAlert(99)); err != nil {
			t.Fatal(err)
		}
		if err := rl.Sync(); err != nil {
			t.Fatal(err)
		}
		rl.Close()
		got := replayAll(t, p, 0)
		if len(got) != 5 || got[4] != testAlert(99) {
			t.Fatalf("cut %d: replay after recovery = %d alerts (last %+v)", cut, len(got), got[len(got)-1])
		}
	}
}

func TestAlertLogRejectsForeignFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(p, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAlertLog(p); err == nil {
		t.Fatal("OpenAlertLog accepted a foreign file")
	}
	if _, err := ReplayAlertLog(p, 0, func(int64, Alert) error { return nil }); err == nil {
		t.Fatal("ReplayAlertLog accepted a foreign file")
	}
}

// TestAlertLogGroupCommit: concurrent appenders must all end durable,
// with commits batching at least some of them (under concurrency the
// committer drains multiple frames per fsync).
func TestAlertLogGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.log")
	l, err := OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(testAlert(w*perWriter + i)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := l.Sync(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Durable != writers*perWriter {
		t.Fatalf("durable %d, want %d", st.Durable, writers*perWriter)
	}
	if st.Commits == 0 || st.Commits > st.Durable {
		t.Fatalf("commits %d out of range (durable %d)", st.Commits, st.Durable)
	}
	t.Logf("group commit: %d frames in %d commits (avg batch %.1f, max %d)",
		st.Durable, st.Commits, st.AvgBatch(), st.MaxBatch)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path, 0); len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
}

// FuzzAlertLogReplay: replay over arbitrary bytes must never panic and
// must never return alerts past the first invalid frame.
func FuzzAlertLogReplay(f *testing.F) {
	// Seed with a genuine log.
	dir, err := os.MkdirTemp("", "fuzzlog")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	p := filepath.Join(dir, "seed.log")
	l, err := OpenAlertLog(p)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Append(testAlert(i))
	}
	l.Sync()
	l.Close()
	seed, err := os.ReadFile(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, int64(0))
	f.Add(seed[:len(seed)-3], int64(0))
	f.Add([]byte(logMagic), int64(0))
	f.Add([]byte{}, int64(0))
	f.Add(append([]byte(logMagic), bytes.Repeat([]byte{0xFF}, 64)...), int64(9))

	fsyncDisabled = true
	defer func() { fsyncDisabled = false }()
	f.Fuzz(func(t *testing.T, data []byte, from int64) {
		p := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		if from < 0 || from > int64(len(data))+16 {
			from = 0
		}
		var prev int64
		end, err := ReplayAlertLog(p, from, func(off int64, a Alert) error {
			if off <= prev {
				t.Fatalf("offsets not monotonic: %d after %d", off, prev)
			}
			prev = off
			return nil
		})
		if err == nil && end > int64(len(data)) {
			t.Fatalf("replay end %d past file size %d", end, len(data))
		}
		// Recovery must also never panic, and a recovered file must
		// replay cleanly end to end.
		if rl, err := OpenAlertLog(p); err == nil {
			size := rl.Size()
			rl.Close()
			if fin, err := ReplayAlertLog(p, 0, func(int64, Alert) error { return nil }); err != nil || fin != size {
				t.Fatalf("post-recovery replay: end %d size %d err %v", fin, size, err)
			}
		}
	})
}
