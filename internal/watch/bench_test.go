package watch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"idnlab/internal/brands"
	"idnlab/internal/candidx"
	"idnlab/internal/core"
	"idnlab/internal/idna"
	"idnlab/internal/simrand"
	"idnlab/internal/zonegen"
)

// benchCatalog builds the 10k-brand defended catalog: the full real
// top-1000 list plus synthetic ASCII LDH labels — the scale the issue's
// "millions of subscriptions over a production-size catalog" scenario
// assumes. Deterministic.
func benchCatalog(n int) []brands.Brand {
	list := append([]brands.Brand(nil), brands.List()...)
	src := simrand.New(0xBEEF_5EED)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := len(list); i < n; i++ {
		m := 4 + src.Intn(16)
		label := make([]byte, 0, m)
		for j := 0; j < m; j++ {
			if src.Bool(0.08) {
				label = append(label, byte('0'+src.Intn(10)))
			} else {
				label = append(label, letters[src.Intn(26)])
			}
		}
		list = append(list, brands.Brand{Domain: string(label) + ".com", Rank: i + 1})
	}
	return list
}

// benchEvent is one pre-parsed, pre-decoded delta event: the shape the
// match stage sees after the I/O side (scan + punycode decode) has run.
type benchEvent struct {
	label string // unicode SLD label ("" for pure-ASCII owners)
	idn   bool
}

// benchEventCorpus renders a real zonegen delta stream and flattens the
// add/NS-change events into match-stage inputs: the honest workload mix
// (mostly benign ASCII, benign IDNs, a paper-calibrated share of
// homograph attacks against the real catalog).
func benchEventCorpus(tb testing.TB, days, addsPerDay int) []benchEvent {
	tb.Helper()
	reg := zonegen.Generate(zonegen.Config{Seed: 1707, Scale: 400})
	gen := reg.DeltaStream(zonegen.DeltaConfig{AddsPerDay: addsPerDay, AttackShare: 0.05, AttackTopK: 500})
	var events []benchEvent
	for day := 0; day < days; day++ {
		d := gen.Next()
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			tb.Fatal(err)
		}
		parsed, err := ParseDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			tb.Fatal(err)
		}
		for _, ev := range parsed.Events {
			if ev.Op == OpDrop {
				continue
			}
			be := benchEvent{}
			if idna.IsACELabel(ev.Owner) {
				label, err := idna.ToUnicodeLabel(ev.Owner)
				if err != nil {
					continue
				}
				be = benchEvent{label: label, idn: true}
			}
			events = append(events, be)
		}
	}
	return events
}

// benchSubs installs subs standing subscriptions over nBrands brands
// with a popularity skew (min of two uniforms ≈ rank-weighted: popular
// brands collect more watchers).
func benchSubs(nBrands, subs int) *SubTable {
	tab := NewSubTable(nBrands)
	src := simrand.New(0x5AB5C21B)
	for i := 0; i < subs; i++ {
		b := src.Intn(nBrands)
		if b2 := src.Intn(nBrands); b2 < b {
			b = b2
		}
		tab.Subscribe(uint32(b), uint64(i))
	}
	tab.Compile()
	return tab
}

// BenchmarkWatchMatch1M is the tentpole gate: one op = one delta event
// through the match stage (index probe + candidate rescore + CSR
// subscriber lookup) against a 10k-brand catalog with 1,000,000
// standing subscriptions. Gates: 0 allocs/op steady-state and a
// -min-throughput floor of 500k events/s (see Makefile bench-watch).
// The committed BENCH_baseline_watch.txt records the same benchmark
// with WATCH_NAIVE=1 — the O(brands) sweep the index replaces.
func BenchmarkWatchMatch1M(b *testing.B) {
	const nBrands = 10_000
	catalog := benchCatalog(nBrands)
	events := benchEventCorpus(b, 4, 3000)
	tab := benchSubs(nBrands, 1_000_000)
	snap := tab.Snapshot()
	if snap.Total() != 1_000_000 {
		b.Fatalf("subscriptions = %d, want 1M", snap.Total())
	}

	naive := os.Getenv("WATCH_NAIVE") != ""
	var (
		m      *Matcher
		oracle *core.HomographDetector
		norms  []core.NormalizedDomain
	)
	if naive {
		// The pre-index architecture: every event swept against the
		// whole catalog via the sweep detector.
		oracle = core.NewHomographDetector(0, core.WithoutPrefilter(), core.WithBrands(catalog))
		for _, ev := range events {
			if !ev.idn {
				norms = append(norms, core.NormalizedDomain{ASCII: true})
				continue
			}
			n, err := core.Normalize(ev.label + ".com")
			if err != nil {
				norms = append(norms, core.NormalizedDomain{ASCII: true})
				continue
			}
			norms = append(norms, n)
		}
	} else {
		ix, err := candidx.Build(catalog, candidx.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		det := core.NewHomographDetector(0, core.WithIndex(ix))
		m, err = NewMatcher(det)
		if err != nil {
			b.Fatal(err)
		}
	}

	// Warm caches and scratch, and count the hit rate once.
	hits, watched := 0, 0
	for i, ev := range events {
		if !ev.idn {
			continue
		}
		if naive {
			if _, ok := oracle.DetectNormalized(norms[i]); ok {
				hits++
			}
			continue
		}
		if match, ok := m.Match(ev.label); ok {
			hits++
			if snap.Count(match.BrandID) > 0 {
				watched++
			}
		}
	}
	b.Logf("%d events (%d IDN), %d matches, %d watched", len(events), countIDN(events), hits, watched)

	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if naive {
			n := norms[i%len(norms)]
			if n.ASCII {
				continue
			}
			if match, ok := oracle.DetectNormalized(n); ok {
				sink += uint64(len(match.Brand))
			}
			continue
		}
		if !ev.idn {
			continue
		}
		if match, ok := m.Match(ev.label); ok {
			sink += uint64(len(snap.Of(match.BrandID)))
		}
	}
	_ = sink
}

func countIDN(events []benchEvent) int {
	n := 0
	for _, ev := range events {
		if ev.idn {
			n++
		}
	}
	return n
}

// BenchmarkAlertLogAppend measures the group-commit batching curve: the
// same durable append under 1, 16 and 256 concurrent writers, each
// waiting for durability after every alert. One op = one durable alert
// (Append + Sync). frames/commit is the measured batch size — writers
// blocked on the same in-flight fsync have their frames committed
// together, so the batch grows with writer count while the fsync cost
// amortizes: the whole value of group commit.
func BenchmarkAlertLogAppend(b *testing.B) {
	for _, writers := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			l, err := OpenAlertLog(filepath.Join(b.TempDir(), "bench.log"))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			alert := Alert{Serial: 2017080101, Op: "add", Domain: "xn--pple-43d.com",
				Unicode: "аpple.com", Brand: "apple.com", SSIM: 0.997, Subs: 3}
			base := l.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / writers
			extra := b.N % writers
			for w := 0; w < writers; w++ {
				n := per
				if w < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if err := l.Append(alert); err != nil {
							b.Error(err)
							return
						}
						if err := l.Sync(); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			st := l.Stats()
			if st.Durable-base.Durable != uint64(b.N) {
				b.Fatalf("durable %d, want %d", st.Durable-base.Durable, b.N)
			}
			commits := st.Commits - base.Commits
			if commits > 0 {
				b.ReportMetric(float64(uint64(b.N))/float64(commits), "frames/commit")
			}
		})
	}
}

// BenchmarkDeltaParse measures the I/O-side cost the match stage sits
// behind: scanning and classifying one full day delta. Reported in
// MB/s; one op = one whole delta file.
func BenchmarkDeltaParse(b *testing.B) {
	reg := zonegen.Generate(zonegen.Config{Seed: 1707, Scale: 400})
	gen := reg.DeltaStream(zonegen.DeltaConfig{AddsPerDay: 3000})
	d := gen.Next()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	parsed, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("delta: %d bytes, %d events", len(data), len(parsed.Events))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseDelta(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
