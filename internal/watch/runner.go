package watch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Cursor is the daemon's durable progress marker: the highest delta
// serial whose alerts are on stable storage, and the alert-log offset
// at that point. The update protocol is alerts-first: the runner
// appends and Sync()s every alert from a delta, then persists the
// cursor. A crash between the two replays the whole delta on restart —
// duplicate alerts, never lost ones (at-least-once), and duplicates
// carry the same (serial, domain) keys so consumers can drop them.
type Cursor struct {
	Serial    uint32 `json:"serial"`
	LogOffset int64  `json:"logOffset"`
}

// LoadCursor reads a cursor file; a missing file is a zero cursor (run
// from the beginning), any other failure is an error.
func LoadCursor(path string) (Cursor, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return Cursor{}, nil
	}
	if err != nil {
		return Cursor{}, err
	}
	var c Cursor
	if err := json.Unmarshal(data, &c); err != nil {
		return Cursor{}, fmt.Errorf("watch: corrupt cursor %s: %w", path, err)
	}
	return c, nil
}

// SaveCursor writes the cursor atomically (temp file + rename + fsync)
// so a crash mid-save leaves the previous cursor intact.
func SaveCursor(path string, c Cursor) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ParseDeltaFileName extracts the serial from a delta file name of the
// form "delta-0000000001.zone" (the shape zonegen emits).
func ParseDeltaFileName(name string) (uint32, bool) {
	rest, ok := strings.CutPrefix(name, "delta-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".zone")
	if !ok || len(rest) == 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// Runner ties the pieces into the daemon's main loop: tail a directory
// of delta files, stream each new one through the engine, append the
// alerts durably, advance the cursor.
type Runner struct {
	Engine     *Engine
	Log        *AlertLog
	Dir        string // delta directory to tail
	CursorPath string // cursor file; empty disables persistence

	cursor Cursor
	loaded bool
}

// Cursor returns the runner's current in-memory cursor.
func (r *Runner) Cursor() Cursor { return r.cursor }

// init loads the persisted cursor on first use.
func (r *Runner) init() error {
	if r.loaded {
		return nil
	}
	if r.CursorPath != "" {
		c, err := LoadCursor(r.CursorPath)
		if err != nil {
			return err
		}
		r.cursor = c
	}
	r.loaded = true
	return nil
}

// pendingFiles lists delta files in Dir with serials above the cursor,
// in serial order.
func (r *Runner) pendingFiles() ([]string, error) {
	entries, err := os.ReadDir(r.Dir)
	if err != nil {
		return nil, err
	}
	type pf struct {
		serial uint32
		path   string
	}
	var files []pf
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		serial, ok := ParseDeltaFileName(e.Name())
		if !ok || serial <= r.cursor.Serial {
			continue
		}
		files = append(files, pf{serial, filepath.Join(r.Dir, e.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].serial < files[j].serial })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}

// ProcessFile streams one delta file end to end: parse, match, append
// every alert, Sync the log, then advance and persist the cursor.
// Returns the number of alerts the delta produced.
func (r *Runner) ProcessFile(ctx context.Context, path string) (int, error) {
	if err := r.init(); err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	d, err := ParseDelta(f)
	f.Close()
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	alerts := 0
	err = r.Engine.ProcessDelta(ctx, d, func(a Alert) error {
		alerts++
		return r.Log.Append(a)
	})
	if err != nil {
		return alerts, err
	}
	// Durability barrier before the cursor moves: this ordering is the
	// at-least-once guarantee.
	if err := r.Log.Sync(); err != nil {
		return alerts, err
	}
	r.cursor = Cursor{Serial: d.Serial, LogOffset: r.Log.Size()}
	if r.CursorPath != "" {
		if err := SaveCursor(r.CursorPath, r.cursor); err != nil {
			return alerts, err
		}
	}
	return alerts, nil
}

// Poll processes every pending delta file once, in serial order.
// Returns the number of files processed and the number of alerts.
func (r *Runner) Poll(ctx context.Context) (files, alerts int, err error) {
	if err := r.init(); err != nil {
		return 0, 0, err
	}
	paths, err := r.pendingFiles()
	if err != nil {
		return 0, 0, err
	}
	for _, p := range paths {
		if ctx.Err() != nil {
			return files, alerts, ctx.Err()
		}
		n, err := r.ProcessFile(ctx, p)
		alerts += n
		if err != nil {
			return files, alerts, err
		}
		files++
	}
	return files, alerts, nil
}

// Run polls until the context is cancelled, sleeping interval between
// empty polls. Cancellation between files is clean: the current file
// finishes (or aborts via the pipeline's own drain path) before Run
// returns ctx.Err().
func (r *Runner) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, _, err := r.Poll(ctx); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
