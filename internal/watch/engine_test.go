package watch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"idnlab/internal/zonegen"
)

// testFixture builds the full streaming stack over the real brand
// catalog: an index-backed detector, a subscription table covering
// every brand, and an engine.
func testFixture(t testing.TB, topK, workers int) (*Engine, *SubTable) {
	t.Helper()
	det, list := testCatalogDetector(t, topK)
	subs := NewSubTable(len(list))
	for i := range list {
		subs.Subscribe(uint32(i), uint64(1000+i))
		if i%3 == 0 {
			subs.Subscribe(uint32(i), uint64(5000+i))
		}
	}
	subs.Compile()
	eng, err := NewEngine(det, subs, EngineConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return eng, subs
}

// writeDeltaDir renders `days` of deltas for a seed into dir and
// returns the generator's ground-truth records per day.
func writeDeltaDir(t testing.TB, dir string, seed uint64, cfg zonegen.DeltaConfig, days int) []*zonegen.DayDelta {
	t.Helper()
	reg := zonegen.Generate(zonegen.Config{Seed: seed, Scale: 800})
	gen := reg.DeltaStream(cfg)
	var out []*zonegen.DayDelta
	for i := 0; i < days; i++ {
		d := gen.Next()
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, zonegen.DeltaFileName(d.Serial)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

var attackCfg = zonegen.DeltaConfig{
	AddsPerDay: 150, DropsPerDay: 30, NSChangesPerDay: 20,
	AttackShare: 0.3, AttackTopK: 60,
}

// TestEngineEndToEnd: every homograph attack registration against an
// indexed brand must surface as an alert carrying that brand, and the
// alert stream must be deterministic across runs.
func TestEngineEndToEnd(t *testing.T) {
	eng, _ := testFixture(t, 100, 4)
	dir := t.TempDir()
	days := writeDeltaDir(t, dir, 31, attackCfg, 1)
	gt := days[0]

	data, err := os.ReadFile(filepath.Join(dir, zonegen.DeltaFileName(gt.Serial)))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	collect := func() []Alert {
		var alerts []Alert
		if err := eng.ProcessDelta(context.Background(), d, func(a Alert) error {
			alerts = append(alerts, a)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return alerts
	}
	run1 := collect()
	run2 := collect()
	if len(run1) != len(run2) {
		t.Fatalf("non-deterministic: %d vs %d alerts", len(run1), len(run2))
	}
	for i := range run1 {
		if run1[i] != run2[i] {
			t.Fatalf("alert %d differs between runs:\n%+v\n%+v", i, run1[i], run2[i])
		}
	}

	byDomain := make(map[string]Alert, len(run1))
	for _, a := range run1 {
		byDomain[a.Domain] = a
		if a.Serial != gt.Serial || a.Subs < 1 || a.SSIM < 0.8 || a.Brand == "" {
			t.Errorf("malformed alert %+v", a)
		}
	}
	// Ground truth: pixel-identical homograph adds against the top-60
	// catalog must all be caught (the matcher is bit-identical to the
	// sweep, and identical variants score SSIM 1.0).
	attacks := 0
	for _, z := range gt.Zones {
		for _, rec := range z.Records {
			if rec.Op != zonegen.DeltaAdd || rec.Attack != zonegen.AttackHomograph {
				continue
			}
			attacks++
			a, ok := byDomain[rec.Owner+"."+z.Origin]
			if !ok {
				t.Errorf("attack add %s.%s (target %s) produced no alert", rec.Owner, z.Origin, rec.TargetBrand)
				continue
			}
			if a.Brand != rec.TargetBrand {
				// A pixel-identical variant can legitimately resolve to
				// a same-label brand ranked earlier; require the label
				// to agree instead of the exact domain.
				if strings.SplitN(a.Brand, ".", 2)[0] != strings.SplitN(rec.TargetBrand, ".", 2)[0] {
					t.Errorf("alert for %s names brand %s, attack targeted %s", a.Domain, a.Brand, rec.TargetBrand)
				}
			}
		}
	}
	if attacks == 0 {
		t.Fatal("generator produced no homograph attacks; test is vacuous")
	}
	if len(run1) < attacks {
		t.Errorf("%d alerts for %d attacks", len(run1), attacks)
	}
}

// TestEngineUnsubscribedBrandsSilent: matches against brands nobody
// watches must be filtered, and the suppression counted.
func TestEngineUnsubscribedBrandsSilent(t *testing.T) {
	det, list := testCatalogDetector(t, 60)
	subs := NewSubTable(len(list)) // nobody subscribed
	subs.Compile()
	eng, err := NewEngine(det, subs, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	days := writeDeltaDir(t, dir, 31, attackCfg, 1)
	data, _ := os.ReadFile(filepath.Join(dir, zonegen.DeltaFileName(days[0].Serial)))
	d, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var alerts []Alert
	if err := eng.ProcessDelta(context.Background(), d, func(a Alert) error {
		alerts = append(alerts, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("%d alerts with zero subscribers", len(alerts))
	}
	matched, unwatched, _ := eng.Counters()
	if matched == 0 || unwatched != matched {
		t.Fatalf("counters matched=%d unwatched=%d; want all matches suppressed", matched, unwatched)
	}
}

// TestEngineCancellation: cancelling mid-delta must abort promptly with
// ctx.Err() and leak no goroutines.
func TestEngineCancellation(t *testing.T) {
	eng, _ := testFixture(t, 60, 4)
	dir := t.TempDir()
	days := writeDeltaDir(t, dir, 77, zonegen.DeltaConfig{AddsPerDay: 4000, AttackShare: 0.5, AttackTopK: 60}, 1)
	data, _ := os.ReadFile(filepath.Join(dir, zonegen.DeltaFileName(days[0].Serial)))
	d, err := ParseDelta(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = eng.ProcessDelta(ctx, d, func(a Alert) error {
		seen++
		if seen == 3 {
			cancel()
		}
		return nil
	})
	cancel()
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Goroutines must drain. Allow scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Backlog gauge returns to zero after the aborted run.
	if m := eng.Metrics(); m.Backlog() != 0 {
		t.Fatalf("backlog %d after cancelled run", m.Backlog())
	}
	// The engine stays usable after cancellation.
	var alerts []Alert
	if err := eng.ProcessDelta(context.Background(), d, func(a Alert) error {
		alerts = append(alerts, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("no alerts on reuse after cancellation")
	}
}
