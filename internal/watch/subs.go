package watch

import (
	"sync"
	"sync/atomic"
)

// subShards is the stripe count for the mutable subscription table.
// Power of two so the shard pick is a mask, sized so that concurrent
// subscribe/unsubscribe traffic from API handlers rarely collides.
const subShards = 64

// SubTable is the standing-subscription registry: which subscribers
// (opaque uint64 IDs — account IDs, webhook IDs) want alerts for which
// brand. The table has two faces: a sharded mutable side for
// subscribe/unsubscribe churn, and an immutable compiled snapshot (CSR
// layout) the match hot path reads lock-free and allocation-free.
// Mutations do not show up in matching until Compile is called; the
// watch daemon compiles once at startup and after subscription batches,
// never per delta.
type SubTable struct {
	nBrands int
	shards  [subShards]subShard
	snap    atomic.Pointer[SubSnapshot]
}

type subShard struct {
	mu   sync.Mutex
	subs map[uint32][]uint64 // brand ID -> subscriber IDs (unsorted)
}

// NewSubTable builds an empty table for a catalog of nBrands brands
// (brand IDs are candidx brand IDs: dense, 0..nBrands-1). The initial
// compiled snapshot is empty, so matching is valid before any Compile.
func NewSubTable(nBrands int) *SubTable {
	t := &SubTable{nBrands: nBrands}
	for i := range t.shards {
		t.shards[i].subs = make(map[uint32][]uint64)
	}
	t.snap.Store(&SubSnapshot{off: make([]uint32, nBrands+1)})
	return t
}

// NBrands reports the catalog size the table was built for.
func (t *SubTable) NBrands() int { return t.nBrands }

func (t *SubTable) shard(brand uint32) *subShard {
	return &t.shards[brand&(subShards-1)]
}

// Subscribe registers subscriber for alerts on brand. Duplicate
// subscriptions are idempotent. Brand IDs outside the catalog are
// ignored.
func (t *SubTable) Subscribe(brand uint32, subscriber uint64) {
	if int(brand) >= t.nBrands {
		return
	}
	s := t.shard(brand)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.subs[brand] {
		if id == subscriber {
			return
		}
	}
	s.subs[brand] = append(s.subs[brand], subscriber)
}

// Unsubscribe removes subscriber from brand; unknown pairs are no-ops.
func (t *SubTable) Unsubscribe(brand uint32, subscriber uint64) {
	if int(brand) >= t.nBrands {
		return
	}
	s := t.shard(brand)
	s.mu.Lock()
	defer s.mu.Unlock()
	list := s.subs[brand]
	for i, id := range list {
		if id == subscriber {
			list[i] = list[len(list)-1]
			s.subs[brand] = list[:len(list)-1]
			return
		}
	}
}

// SubSnapshot is the compiled, immutable form of the table: CSR layout
// (off[brand] .. off[brand+1] indexes into ids) so a brand's subscriber
// list is two array reads and a slice header — no map probe, no lock,
// no allocation. Snapshots are shared by all matcher workers via an
// atomic pointer; a snapshot observed once stays valid forever.
type SubSnapshot struct {
	off   []uint32
	ids   []uint64
	total int
}

// Of returns brand's subscribers. The slice aliases the snapshot's
// backing array: read-only, valid for the snapshot's lifetime, zero
// allocations.
func (s *SubSnapshot) Of(brand uint32) []uint64 {
	if int(brand) >= len(s.off)-1 {
		return nil
	}
	return s.ids[s.off[brand]:s.off[brand+1]]
}

// Count returns the number of subscribers for brand without
// materializing the slice.
func (s *SubSnapshot) Count(brand uint32) int {
	if int(brand) >= len(s.off)-1 {
		return 0
	}
	return int(s.off[brand+1] - s.off[brand])
}

// Total reports the total subscription count across all brands.
func (s *SubSnapshot) Total() int { return s.total }

// Compile freezes the current table contents into a new snapshot and
// publishes it for matchers. O(subscriptions); called on subscription
// batches, never on the delta path.
func (t *SubTable) Compile() *SubSnapshot {
	snap := &SubSnapshot{off: make([]uint32, t.nBrands+1)}
	// Pass 1: per-brand counts (under each shard lock once).
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for brand, list := range s.subs {
			snap.off[brand+1] += uint32(len(list))
		}
		s.mu.Unlock()
	}
	for i := 1; i <= t.nBrands; i++ {
		snap.off[i] += snap.off[i-1]
	}
	snap.total = int(snap.off[t.nBrands])
	snap.ids = make([]uint64, snap.total)
	// Pass 2: fill. cursor tracks the next free slot per brand.
	cursor := make([]uint32, t.nBrands)
	copy(cursor, snap.off[:t.nBrands])
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for brand, list := range s.subs {
			n := copy(snap.ids[cursor[brand]:], list)
			cursor[brand] += uint32(n)
		}
		s.mu.Unlock()
	}
	t.snap.Store(snap)
	return snap
}

// Snapshot returns the most recently compiled snapshot. Never nil.
func (t *SubTable) Snapshot() *SubSnapshot { return t.snap.Load() }
