package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/core"
	"idnlab/internal/metricsutil"
	"idnlab/internal/pipeline"
	"idnlab/internal/version"
)

// GatewayConfig parameterizes a Gateway. The zero value selects sane
// defaults throughout.
type GatewayConfig struct {
	// NodeID names the gateway in health bodies (default generated).
	NodeID string
	// Membership and Router parameterize the cluster plumbing.
	Membership MembershipConfig
	Router     RouterConfig
	// MaxBatch bounds labels per batch request and MUST match the
	// workers' cap — the gateway enforces it at the edge so a worker
	// never sees an oversized sub-batch (default 256). MaxBodyBytes
	// bounds request bodies (default 1MiB).
	MaxBatch     int
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline, covering all retries
	// and hedges (default 2s — deliberately above the workers' 1s so a
	// failover retry still fits).
	RequestTimeout time.Duration
	// ScatterWorkers bounds concurrent sub-batch fan-out (default 16;
	// the work is I/O-bound, so this exceeds GOMAXPROCS deliberately).
	ScatterWorkers int
	// MinReady is the alive-node count below which /readyz reports 503
	// (default 1).
	MinReady int
	// DrainTimeout bounds graceful shutdown (default 5s).
	DrainTimeout time.Duration
	// CoalesceWindow, when > 0, enables single-request coalescing:
	// concurrent POST /v1/detect requests for the same ring owner are
	// held for at most this long (sensible range 250µs–1ms) and merged
	// into one upstream /v1/detect/batch call. 0 disables coalescing.
	CoalesceWindow time.Duration
	// CoalesceMax bounds how many singles one window may merge; a full
	// window flushes immediately without waiting out CoalesceWindow
	// (default 64; must not exceed MaxBatch).
	CoalesceMax int
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.NodeID == "" {
		c.NodeID = "gateway"
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.ScatterWorkers <= 0 {
		c.ScatterWorkers = 16
	}
	if c.MinReady <= 0 {
		c.MinReady = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.CoalesceMax <= 0 {
		c.CoalesceMax = 64
	}
	if c.CoalesceMax > c.MaxBatch {
		c.CoalesceMax = c.MaxBatch
	}
	return c
}

// gwMetrics are the gateway's own live counters (per-node detector
// metrics live on the workers and are merged at scrape time).
type gwMetrics struct {
	start time.Time

	single      atomic.Uint64
	batch       atomic.Uint64
	labels      atomic.Uint64
	subBatches  atomic.Uint64
	localErrors atomic.Uint64 // invalid domains answered at the edge

	// Coalescer counters: windows dispatched, singles that rode a merged
	// (≥2-call) window, and windows flushed by the timer rather than the
	// size bound.
	coalWindows  atomic.Uint64
	coalBatched  atomic.Uint64
	coalTimeouts atomic.Uint64

	// Read-repair counters (repair.go): failover replies forwarded to
	// the key's ring owner, drops from a full queue, send failures —
	// plus rejoins observed by membership (dead node resurrected).
	repairForwards atomic.Uint64
	repairDropped  atomic.Uint64
	repairErrors   atomic.Uint64
	rejoins        atomic.Uint64

	status2xx atomic.Uint64
	status4xx atomic.Uint64
	status429 atomic.Uint64
	status5xx atomic.Uint64

	latency metricsutil.Histogram
}

func (m *gwMetrics) observeStatus(code int) {
	switch {
	case code == 429:
		m.status429.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	}
}

// subBatch is one owner's slice of a batch request: the original
// request indices plus the normalized ACE domains bound for that owner.
// key is any member domain — all share an owner at grouping time, and
// the router re-resolves candidates from it, so even if the ring moves
// mid-flight the sub-batch lands somewhere correct (at worst a cache
// miss on a non-owner).
type subBatch struct {
	key     string
	indices []int
	domains []string
	// reqCtx carries the originating request's deadline into the engine
	// Func (which has no ctx parameter of its own).
	reqCtx context.Context
}

func (sb subBatch) ctx() context.Context {
	if sb.reqCtx != nil {
		return sb.reqCtx
	}
	return context.Background()
}

// subResult is one sub-batch's merged outcome.
type subResult struct {
	indices []int
	results []api.DetectResponse
}

// shedError propagates a worker's 429 (with its Retry-After hint) as
// the whole batch's outcome — partial batches would break the
// index-aligned contract.
type shedError struct{ retryAfter string }

func (e *shedError) Error() string { return "worker shed sub-batch" }

// Gateway fronts N idnserve workers: consistent-hash routing on single
// detects, scatter/gather on batches, merged metrics, membership at
// /clusterz, and worker registration at /v1/join.
type Gateway struct {
	cfg      GatewayConfig
	mem      *Membership
	router   *Router
	scatter  *pipeline.Engine[subBatch, subResult, struct{}]
	coal     *coalescer // nil unless CoalesceWindow > 0
	metrics  *gwMetrics
	repairCh chan repairItem
	draining atomic.Bool
}

// NewGateway builds the gateway and its scatter engine.
func NewGateway(cfg GatewayConfig) *Gateway {
	cfg = cfg.withDefaults()
	mem := NewMembership(cfg.Membership)
	g := &Gateway{
		cfg:      cfg,
		mem:      mem,
		router:   NewRouter(mem, cfg.Router),
		metrics:  &gwMetrics{start: time.Now()},
		repairCh: make(chan repairItem, repairQueueSize),
	}
	mem.OnRejoin(func(string) { g.metrics.rejoins.Add(1) })
	// Sub-batch fan-out reuses the streaming engine (PR 1): Batch=1
	// because each item is itself a network round-trip, order-preserving
	// fan-in for free, per-stage metrics surfaced at /metrics.
	g.scatter = pipeline.New(
		pipeline.Config{Stage: "gateway.scatter", Workers: cfg.ScatterWorkers, Batch: 1},
		func() struct{} { return struct{}{} },
		func(_ struct{}, sb subBatch) (subResult, bool, error) {
			return g.forwardSubBatch(sb)
		})
	if cfg.CoalesceWindow > 0 {
		g.coal = newCoalescer(g)
	}
	return g
}

// Membership exposes the registry (tests and Run's sweeper).
func (g *Gateway) Membership() *Membership { return g.mem }

// Router exposes the routing client (tests).
func (g *Gateway) Router() *Router { return g.router }

// Draining reports whether graceful shutdown has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// forwardSubBatch sends one owner's sub-batch through the router and
// parses the worker's reply. Infrastructure failures and sheds surface
// as engine errors, aborting the whole batch with one taxonomy-mapped
// status.
func (g *Gateway) forwardSubBatch(sb subBatch) (subResult, bool, error) {
	g.metrics.subBatches.Add(1)
	// The append codec is infallible for requests (no floats on the
	// request side), which is also why the old ignored-json.Marshal-error
	// hazard no longer exists on the forward path.
	body := api.AppendBatchRequest(nil, &api.BatchRequest{Domains: sb.domains})
	// The engine's Func has no ctx parameter; the request deadline rides
	// in on the subBatch (set by handleBatch before dispatch).
	rep, err := g.router.Do(sb.ctx(), sb.key, http.MethodPost, "/v1/detect/batch", body)
	if err != nil {
		return subResult{}, false, err
	}
	defer rep.Release() // the decoder copies every string out of Body
	switch rep.Status {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return subResult{}, false, &shedError{retryAfter: rep.RetryAfter}
	default:
		return subResult{}, false, fmt.Errorf("node %s: unexpected status %d", rep.NodeID, rep.Status)
	}
	br, err := api.DecodeBatchResponseBytes(rep.Body)
	if err != nil {
		return subResult{}, false, fmt.Errorf("node %s: bad batch reply: %v", rep.NodeID, err)
	}
	if len(br.Results) != len(sb.domains) {
		return subResult{}, false, fmt.Errorf("node %s: %d results for %d domains", rep.NodeID, len(br.Results), len(sb.domains))
	}
	return subResult{indices: sb.indices, results: br.Results}, true, nil
}

// Handler returns the gateway's HTTP mux:
//
//	POST /v1/detect        route to ring owner (hedged), pass through
//	POST /v1/detect/batch  split by owner, scatter/gather, reassemble
//	POST /v1/join          worker registration + heartbeat
//	GET  /healthz          gateway liveness; 503 while draining
//	GET  /readyz           cluster readiness (>= MinReady alive nodes)
//	GET  /clusterz         membership + ring + breaker state
//	GET  /metrics          gateway counters + merged per-node metrics
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", g.instrument(g.handleDetect))
	mux.HandleFunc("POST /v1/detect/batch", g.instrument(g.handleBatch))
	mux.HandleFunc("POST /v1/join", g.handleJoin)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /clusterz", g.handleClusterz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

// statusWriter captures the response code for the status counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (g *Gateway) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(ctx))
		g.metrics.observeStatus(sw.code)
		g.metrics.latency.Observe(time.Since(start))
	}
}

// writeError maps the gateway error taxonomy to statuses: decode errors
// 400/413, sheds 429 with the worker's Retry-After, exhausted rings and
// deadlines 503.
func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var shed *shedError
	switch {
	case errors.Is(err, api.ErrBatchTooLarge), errors.Is(err, api.ErrTooLarge):
		api.WriteJSON(w, http.StatusRequestEntityTooLarge, api.ErrorResponse{Error: err.Error()})
	case errors.Is(err, api.ErrMalformed):
		api.WriteJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: err.Error()})
	case errors.As(err, &shed):
		if shed.retryAfter != "" {
			w.Header().Set("Retry-After", shed.retryAfter)
		} else {
			w.Header().Set("Retry-After", "1")
		}
		api.WriteJSON(w, http.StatusTooManyRequests, api.ErrorResponse{Error: "cluster saturated"})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		api.WriteJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{Error: "deadline exceeded"})
	case errors.Is(err, ErrNoNodes), errors.Is(err, ErrUnavailable):
		api.WriteJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{Error: err.Error()})
	default:
		api.WriteJSON(w, http.StatusBadGateway, api.ErrorResponse{Error: err.Error()})
	}
}

func (g *Gateway) handleDetect(w http.ResponseWriter, r *http.Request) {
	g.metrics.single.Add(1)
	req, err := api.DecodeDetect(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeError(w, err)
		return
	}
	n, err := core.Normalize(req.Domain)
	if err != nil {
		api.WriteJSON(w, http.StatusBadRequest, api.ErrorResponse{
			Error: fmt.Sprintf("invalid domain %q: %v", req.Domain, err),
		})
		return
	}
	if g.coal != nil {
		g.detectCoalesced(w, r, n.ACE)
		return
	}
	// Forward the ACE form: it is the partition key, the worker's cache
	// key, and re-normalizes in the worker for free. The append codec is
	// infallible here (string-only body), so the former silent
	// json.Marshal-error path — which forwarded an empty body — is gone
	// by construction.
	body := api.AppendDetectRequest(nil, &api.DetectRequest{Domain: n.ACE})
	rep, err := g.router.DoHedged(r.Context(), n.ACE, http.MethodPost, "/v1/detect", body)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.metrics.labels.Add(1)
	// Failover read-repair: a 200 served by a non-owner means the owner
	// is cold for this key (rebooted, or its replica was promoted) —
	// forward the verdict to it asynchronously (repair.go). Copied
	// before passthrough releases the pooled body.
	if rep.Status == http.StatusOK {
		if owner, ok := g.router.Owner(n.ACE); ok && owner.ID != rep.NodeID {
			g.offerRepair(owner.Addr, rep.Body)
		}
	}
	g.passthrough(w, rep)
}

// passthrough relays a routed Reply verbatim — status, Retry-After and
// body — then releases the pooled body.
func (g *Gateway) passthrough(w http.ResponseWriter, rep Reply) {
	if rep.RetryAfter != "" {
		w.Header().Set("Retry-After", rep.RetryAfter)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(rep.Status)
	_, _ = w.Write(rep.Body)
	rep.Release()
}

// detectCoalesced routes one normalized single through the coalescer
// and waits for the demultiplexed result (or the caller's deadline —
// the buffered result channel means an abandoned wait cannot block the
// flush).
func (g *Gateway) detectCoalesced(w http.ResponseWriter, r *http.Request, ace string) {
	call, err := g.coal.submit(ace)
	if err != nil {
		g.writeError(w, err)
		return
	}
	select {
	case res := <-call.done:
		if res.err != nil {
			g.writeError(w, res.err)
			return
		}
		g.metrics.labels.Add(1)
		if res.direct {
			g.passthrough(w, res.rep)
			return
		}
		api.WriteDetect(w, http.StatusOK, &res.resp)
	case <-r.Context().Done():
		g.writeError(w, r.Context().Err())
	}
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.metrics.batch.Add(1)
	req, err := api.DecodeBatch(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes), g.cfg.MaxBatch)
	if err != nil {
		g.writeError(w, err)
		return
	}
	results := make([]api.DetectResponse, len(req.Domains))
	// Normalize at the edge: invalid entries are answered locally (the
	// same per-item error shape a worker produces), valid ones grouped
	// by ring owner.
	groups := make(map[string]*subBatch)
	order := make([]*subBatch, 0, 4)
	for i, raw := range req.Domains {
		n, err := core.Normalize(raw)
		if err != nil {
			g.metrics.localErrors.Add(1)
			results[i] = api.DetectResponse{Input: raw, Error: err.Error()}
			continue
		}
		owner, ok := g.router.Owner(n.ACE)
		if !ok {
			g.writeError(w, ErrNoNodes)
			return
		}
		sb, seen := groups[owner.ID]
		if !seen {
			sb = &subBatch{key: n.ACE}
			groups[owner.ID] = sb
			order = append(order, sb)
		}
		sb.indices = append(sb.indices, i)
		sb.domains = append(sb.domains, n.ACE)
	}
	if len(order) > 0 {
		subs := make([]subBatch, len(order))
		for i, sb := range order {
			sb.reqCtx = r.Context()
			subs[i] = *sb
		}
		err = g.scatter.Stream(r.Context(), pipeline.FromSlice(subs), func(res subResult) error {
			for j, idx := range res.indices {
				results[idx] = res.results[j]
			}
			return nil
		})
		if err != nil {
			g.writeError(w, err)
			return
		}
	}
	resp := api.BatchResponse{Count: len(req.Domains), Results: results}
	for i := range results {
		if results[i].Flagged {
			resp.Flagged++
		}
	}
	g.metrics.labels.Add(uint64(len(req.Domains)))
	api.WriteBatch(w, http.StatusOK, &resp)
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req JoinRequest
	if err := dec.Decode(&req); err != nil || req.ID == "" || req.Addr == "" {
		api.WriteJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: "join requires id and addr"})
		return
	}
	if _, _, err := net.SplitHostPort(req.Addr); err != nil {
		api.WriteJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: fmt.Sprintf("bad addr %q: %v", req.Addr, err)})
		return
	}
	g.mem.Join(req.ID, req.Addr)
	api.WriteJSON(w, http.StatusOK, JoinResponse{
		View:        g.mem.Snapshot(),
		HeartbeatMs: g.mem.HeartbeatInterval().Milliseconds(),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if g.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	api.WriteJSON(w, code, map[string]any{
		"status": status, "node": g.cfg.NodeID, "version": version.Version, "role": "gateway",
	})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	alive := g.mem.AliveCount()
	ready := !g.Draining() && alive >= g.cfg.MinReady
	status, code := "ready", http.StatusOK
	if !ready {
		status, code = "unready", http.StatusServiceUnavailable
	}
	api.WriteJSON(w, code, map[string]any{
		"status": status, "node": g.cfg.NodeID, "version": version.Version, "role": "gateway",
		"aliveNodes": alive, "minReady": g.cfg.MinReady, "epoch": g.mem.Epoch(),
	})
}

func (g *Gateway) handleClusterz(w http.ResponseWriter, r *http.Request) {
	view := g.mem.Snapshot()
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"epoch":       view.Epoch,
		"heartbeatMs": g.mem.HeartbeatInterval().Milliseconds(),
		"nodes":       view.Nodes,
		"ringSize":    g.router.Ring().Len(),
		"router":      g.router.Stats(),
	})
}

// nodeMetricsDigest is the slice of a worker's /metrics the gateway
// aggregates (the raw snapshot rides alongside it unmodified).
type nodeMetricsDigest struct {
	Requests struct {
		Labels  uint64 `json:"labels"`
		Flagged uint64 `json:"flagged"`
	} `json:"requests"`
	Cache struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Coalesced uint64 `json:"coalesced"`
		Size      int    `json:"size"`
	} `json:"cache"`
	Store struct {
		Loaded          bool   `json:"loaded"`
		WarmBootEntries int    `json:"warmBootEntries"`
		RepairHits      uint64 `json:"repairHits"`
		RepairMisses    uint64 `json:"repairMisses"`
		SyncIngested    uint64 `json:"syncIngested"`
		ReplicationIn   uint64 `json:"replicationIn"`
	} `json:"store"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	replies := g.router.Broadcast(ctx, "/metrics")

	perNode := make(map[string]json.RawMessage, len(replies))
	var agg struct {
		Labels, Flagged, Hits, Misses, Coalesced uint64
		CacheSize                                int
		Reporting                                int

		DurableNodes    int
		WarmBootEntries int
		RepairHits      uint64
		RepairMisses    uint64
		SyncIngested    uint64
		ReplicationIn   uint64
	}
	for id, rep := range replies {
		if rep.Status != http.StatusOK || len(rep.Body) == 0 {
			perNode[id] = json.RawMessage(`{"error":"unreachable"}`)
			continue
		}
		perNode[id] = json.RawMessage(rep.Body)
		var d nodeMetricsDigest
		if json.Unmarshal(rep.Body, &d) == nil {
			agg.Labels += d.Requests.Labels
			agg.Flagged += d.Requests.Flagged
			agg.Hits += d.Cache.Hits
			agg.Misses += d.Cache.Misses
			agg.Coalesced += d.Cache.Coalesced
			agg.CacheSize += d.Cache.Size
			agg.Reporting++
			if d.Store.Loaded {
				agg.DurableNodes++
				agg.WarmBootEntries += d.Store.WarmBootEntries
				agg.RepairHits += d.Store.RepairHits
				agg.RepairMisses += d.Store.RepairMisses
				agg.SyncIngested += d.Store.SyncIngested
				agg.ReplicationIn += d.Store.ReplicationIn
			}
		}
	}
	hitRate := 0.0
	if total := agg.Hits + agg.Coalesced + agg.Misses; total > 0 {
		hitRate = float64(agg.Hits+agg.Coalesced) / float64(total)
	}
	m := g.metrics
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"node":          g.cfg.NodeID,
		"version":       version.Version,
		"uptimeSeconds": time.Since(m.start).Seconds(),
		"gateway": map[string]any{
			"single":      m.single.Load(),
			"batch":       m.batch.Load(),
			"labels":      m.labels.Load(),
			"subBatches":  m.subBatches.Load(),
			"localErrors": m.localErrors.Load(),
			"status2xx":   m.status2xx.Load(),
			"status4xx":   m.status4xx.Load(),
			"status429":   m.status429.Load(),
			"status5xx":   m.status5xx.Load(),
			// Always present (zero when coalescing is off) so scrapers
			// need no feature detection.
			"coalesce_windows":       m.coalWindows.Load(),
			"coalesce_batched":       m.coalBatched.Load(),
			"coalesce_flush_timeout": m.coalTimeouts.Load(),
			"repair_forwards":        m.repairForwards.Load(),
			"repair_dropped":         m.repairDropped.Load(),
			"repair_errors":          m.repairErrors.Load(),
			"rejoins":                m.rejoins.Load(),
		},
		"latency": m.latency.Stats(),
		"scatter": g.scatter.Metrics().JSON(),
		"router":  g.router.Stats(),
		"cluster": map[string]any{
			"epoch":            g.mem.Epoch(),
			"reportingNodes":   agg.Reporting,
			"labels":           agg.Labels,
			"flagged":          agg.Flagged,
			"hits":             agg.Hits,
			"misses":           agg.Misses,
			"coalesced":        agg.Coalesced,
			"cacheSizeTotal":   agg.CacheSize,
			"cacheHitRate":     hitRate,
			"partitionedCache": true,
			// Durable-tier aggregates: how much restart pain the store
			// absorbed cluster-wide (warm boots, peer repairs, sync
			// catch-up) — the restart smoke asserts against these.
			"store": map[string]any{
				"durableNodes":    agg.DurableNodes,
				"warmBootEntries": agg.WarmBootEntries,
				"repairHits":      agg.RepairHits,
				"repairMisses":    agg.RepairMisses,
				"syncIngested":    agg.SyncIngested,
				"replicationIn":   agg.ReplicationIn,
			},
		},
		"nodes": perNode,
	})
}

// Run serves on addr until ctx is cancelled, then drains gracefully
// exactly like the worker's serve.Server.Run: /healthz flips to 503,
// in-flight requests get DrainTimeout, then the listener closes. The
// membership sweeper runs for the lifetime of the listener.
func (g *Gateway) Run(ctx context.Context, addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	sweepCtx, stopSweep := context.WithCancel(context.Background())
	defer stopSweep()
	go g.mem.Run(sweepCtx)
	go g.drainRepairs(sweepCtx)
	httpSrv := &http.Server{
		Handler:           g.Handler(),
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	g.draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), g.cfg.DrainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		return err
	}
	return nil
}
