package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNoNodes reports an empty (or fully dead) ring.
var ErrNoNodes = errors.New("cluster: no routable nodes")

// ErrUnavailable reports that every attempted candidate failed.
var ErrUnavailable = errors.New("cluster: all candidates failed")

// Doer is the router's HTTP client surface (satisfied by *http.Client);
// tests substitute failure-injecting fakes.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// RouterConfig parameterizes the routing client.
type RouterConfig struct {
	// MaxAttempts bounds how many distinct ring candidates one request
	// may try (default 3). Candidates whose breaker is open are skipped
	// without consuming an attempt.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff (default 5ms), doubling
	// per attempt up to MaxBackoff (default 100ms), with ±50% jitter so
	// a burst of failovers does not re-synchronize on the fallback node.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Hedge, when > 0, fires a second request to the next ring candidate
	// if the owner has not answered within this budget — the classic
	// tail-latency hedge. 0 disables hedging.
	Hedge time.Duration
	// Breaker parameterizes the per-node circuit breakers.
	Breaker BreakerConfig
	// Client overrides the HTTP client (default: pooled transport with
	// sane limits).
	Client Doer
	// MaxIdleConns / MaxIdleConnsPerHost tune the default transport's
	// connection pool (defaults 256 / 64). Ignored when Client is set:
	// a custom Doer owns its own pooling.
	MaxIdleConns        int
	MaxIdleConnsPerHost int
	// MaxReplyBytes bounds how much of a node's reply body is read
	// (default 8MiB).
	MaxReplyBytes int64
	// Seed seeds the jitter PRNG (default 1).
	Seed uint64
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 5 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 256
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 64
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        c.MaxIdleConns,
				MaxIdleConnsPerHost: c.MaxIdleConnsPerHost,
				IdleConnTimeout:     60 * time.Second,
			},
		}
	}
	if c.MaxReplyBytes <= 0 {
		c.MaxReplyBytes = 8 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Reply is one node's answer as seen by the router. Any HTTP status
// below 500 counts as an answer (a 429 is the worker telling the client
// to back off — it must pass through untouched, Retry-After and all);
// transport errors and 5xx are failures that advance to the next
// candidate.
//
// Ownership: Body may be backed by a pooled buffer. The consumer that
// receives a Reply owns it and must call Release once Body is no longer
// referenced (copy out anything that outlives the call, or use Detach).
// Never releasing is safe — the buffer just falls to the GC instead of
// the pool — but referencing Body after Release is a data race with the
// next request that draws the buffer.
type Reply struct {
	NodeID     string
	Status     int
	Body       []byte
	RetryAfter string // Retry-After header, when present
	Attempts   int
	Hedged     bool // answered by a hedge, not the primary

	pooled *[]byte // pool token; nil once released or detached
}

// replyBufPool recycles reply-body buffers across upstream exchanges —
// on the proxied-singles hot path this removes the largest per-request
// allocation the gateway makes (the worker's response body).
var replyBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 16<<10); return &b },
}

// maxPooledReply caps what Release returns to the pool so one oversized
// batch reply cannot pin megabytes per pool shard.
const maxPooledReply = 1 << 20

// Release returns the reply's body buffer to the pool. Idempotent.
func (r *Reply) Release() {
	p := r.pooled
	if p == nil {
		return
	}
	r.pooled, r.Body = nil, nil
	if cap(*p) > maxPooledReply {
		return
	}
	*p = (*p)[:0]
	replyBufPool.Put(p)
}

// Detach unhooks Body from the pool: the buffer goes back for reuse and
// Body becomes a private copy the caller may retain indefinitely. Used
// by consumers that store bodies past the request (merged /metrics).
func (r *Reply) Detach() {
	if r.pooled == nil {
		return
	}
	body := append([]byte(nil), r.Body...)
	r.Release()
	r.Body = body
}

// ringCache is the epoch-tagged compiled ring.
type ringCache struct {
	epoch uint64
	ring  *Ring
}

// RouterStats is the router's /clusterz contribution.
type RouterStats struct {
	Retries   uint64            `json:"retries"`
	Hedges    uint64            `json:"hedges"`
	HedgeWins uint64            `json:"hedgeWins"`
	Breakers  map[string]string `json:"breakers"`
}

// Router routes keys to nodes: rendezvous ring over the membership's
// routable set (rebuilt only when the epoch moves), per-node circuit
// breakers, bounded retries with jittered backoff down the candidate
// list, and optional hedged requests. It feeds evidence back into the
// membership (ObserveSuccess/ObserveFailure) so routing outcomes — not
// just heartbeats — drive health state.
type Router struct {
	cfg RouterConfig
	mem *Membership

	ring atomic.Pointer[ringCache]

	mu       sync.Mutex
	breakers map[string]*Breaker

	rng       atomic.Uint64
	retries   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
}

// NewRouter builds a router over mem.
func NewRouter(mem *Membership, cfg RouterConfig) *Router {
	r := &Router{cfg: cfg.withDefaults(), mem: mem, breakers: make(map[string]*Breaker)}
	r.rng.Store(r.cfg.Seed)
	return r
}

// Ring returns the compiled ring for the current membership epoch,
// rebuilding at most once per epoch change (steady state is one atomic
// load plus one membership epoch read).
func (r *Router) Ring() *Ring {
	epoch, nodes := r.mem.Routable()
	if c := r.ring.Load(); c != nil && c.epoch == epoch {
		return c.ring
	}
	c := &ringCache{epoch: epoch, ring: NewRing(nodes)}
	r.ring.Store(c)
	return c.ring
}

// Owner resolves key's current owner.
func (r *Router) Owner(key string) (NodeInfo, bool) { return r.Ring().Owner(key) }

// breaker returns (creating on first use) the breaker for node id.
func (r *Router) breaker(id string) *Breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[id]
	if !ok {
		b = NewBreaker(r.cfg.Breaker)
		r.breakers[id] = b
	}
	return b
}

// Stats snapshots the router counters and breaker states.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Retries:   r.retries.Load(),
		Hedges:    r.hedges.Load(),
		HedgeWins: r.hedgeWins.Load(),
		Breakers:  make(map[string]string),
	}
	r.mu.Lock()
	for id, b := range r.breakers {
		st.Breakers[id] = b.State()
	}
	r.mu.Unlock()
	return st
}

// jitter returns d scaled into [d/2, d) using a lock-free xorshift
// stream — deterministic per seed, contention-free under load.
func (r *Router) jitter(d time.Duration) time.Duration {
	for {
		old := r.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if r.rng.CompareAndSwap(old, x) {
			half := int64(d) / 2
			return time.Duration(half + int64(x%uint64(half+1)))
		}
	}
}

// try performs one HTTP exchange with node nd.
func (r *Router) try(ctx context.Context, nd NodeInfo, method, path string, body []byte) (Reply, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+nd.Addr+path, rd)
	if err != nil {
		return Reply{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return Reply{}, err
	}
	defer resp.Body.Close()
	// Read the body into a pooled buffer (grow-in-place, truncating at
	// MaxReplyBytes exactly like the previous io.ReadAll/LimitReader
	// pair). The buffer travels with the Reply; see Reply's ownership
	// contract.
	pooled := replyBufPool.Get().(*[]byte)
	b := (*pooled)[:0]
	lr := io.LimitReader(resp.Body, r.cfg.MaxReplyBytes)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, rerr := lr.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			*pooled = b[:0]
			replyBufPool.Put(pooled)
			return Reply{}, rerr
		}
	}
	*pooled = b
	if resp.StatusCode >= 500 {
		*pooled = b[:0]
		replyBufPool.Put(pooled)
		return Reply{}, fmt.Errorf("node %s: status %d", nd.ID, resp.StatusCode)
	}
	return Reply{
		NodeID:     nd.ID,
		Status:     resp.StatusCode,
		Body:       b,
		RetryAfter: resp.Header.Get("Retry-After"),
		pooled:     pooled,
	}, nil
}

// attempt runs try with breaker + membership bookkeeping.
func (r *Router) attempt(ctx context.Context, nd NodeInfo, method, path string, body []byte) (Reply, error) {
	rep, err := r.try(ctx, nd, method, path, body)
	br := r.breaker(nd.ID)
	if err != nil {
		// Do not punish a node for the caller's own cancellation: a
		// context deadline is not evidence the node is down.
		if ctx.Err() == nil {
			br.Failure()
			r.mem.ObserveFailure(nd.ID)
		}
		return Reply{}, err
	}
	br.Success()
	r.mem.ObserveSuccess(nd.ID)
	return rep, nil
}

// Do routes one request for key: walk the candidate list in rendezvous
// order, skipping open breakers, retrying transport/5xx failures on the
// next candidate with jittered exponential backoff, at most MaxAttempts
// actual attempts. Any sub-500 HTTP answer — including 429 — returns
// immediately.
func (r *Router) Do(ctx context.Context, key, method, path string, body []byte) (Reply, error) {
	cands := r.Ring().Candidates(key, 0)
	if len(cands) == 0 {
		return Reply{}, ErrNoNodes
	}
	return r.walk(ctx, cands, 0, method, path, body)
}

// walk attempts candidates[skipped:] sequentially. attemptsUsed seeds
// the attempt counter (used by the hedged path's fallback).
func (r *Router) walk(ctx context.Context, cands []NodeInfo, attemptsUsed int, method, path string, body []byte) (Reply, error) {
	attempts := attemptsUsed
	var lastErr error
	for _, nd := range cands {
		if attempts >= r.cfg.MaxAttempts {
			break
		}
		if !r.breaker(nd.ID).Allow() {
			continue // fail fast past an open breaker; no attempt consumed
		}
		if attempts > attemptsUsed {
			// Backoff before a retry, scaled by how many attempts this
			// call has already burned, jittered, capped, and cut short
			// by the caller's deadline.
			d := r.cfg.BaseBackoff << uint(attempts-attemptsUsed-1)
			if d > r.cfg.MaxBackoff {
				d = r.cfg.MaxBackoff
			}
			t := time.NewTimer(r.jitter(d))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Reply{}, ctx.Err()
			}
			r.retries.Add(1)
		}
		attempts++
		rep, err := r.attempt(ctx, nd, method, path, body)
		if err == nil {
			rep.Attempts = attempts
			return rep, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return Reply{}, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = ErrNoNodes // every candidate's breaker was open
	}
	return Reply{}, fmt.Errorf("%w after %d attempts: %v", ErrUnavailable, attempts-attemptsUsed, lastErr)
}

// hedgeResult carries one racer's outcome.
type hedgeResult struct {
	rep    Reply
	err    error
	hedged bool
}

// DoHedged is Do with tail-latency hedging: the owner gets a head
// start of cfg.Hedge; if it has not answered by then, the second
// candidate is raced against it and the first answer wins (the loser is
// cancelled). Falls back to plain Do when hedging is disabled or the
// ring has a single node. Hedges are issued to at most one extra node —
// bounded extra load, bounded tail.
func (r *Router) DoHedged(ctx context.Context, key, method, path string, body []byte) (Reply, error) {
	cands := r.Ring().Candidates(key, 0)
	if len(cands) == 0 {
		return Reply{}, ErrNoNodes
	}
	if r.cfg.Hedge <= 0 || len(cands) < 2 {
		return r.walk(ctx, cands, 0, method, path, body)
	}
	primary, secondary := cands[0], cands[1]
	if !r.breaker(primary.ID).Allow() {
		// Owner is circuit-broken: no point hedging around it, just
		// walk the remainder of the list.
		return r.walk(ctx, cands[1:], 0, method, path, body)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan hedgeResult, 2) // buffered: losers never block
	launch := func(nd NodeInfo, hedged bool) {
		go func() {
			rep, err := r.attempt(raceCtx, nd, method, path, body)
			resc <- hedgeResult{rep: rep, err: err, hedged: hedged}
		}()
	}
	launch(primary, false)
	hedgeTimer := time.NewTimer(r.cfg.Hedge)
	defer hedgeTimer.Stop()

	outstanding := 1
	hedgeFired := false
	var lastErr error
	for outstanding > 0 {
		select {
		case res := <-resc:
			outstanding--
			if res.err == nil {
				cancel() // release the loser immediately
				res.rep.Hedged = res.hedged
				res.rep.Attempts = 1
				if res.hedged {
					r.hedgeWins.Add(1)
				}
				return res.rep, nil
			}
			lastErr = res.err
			if ctx.Err() != nil {
				return Reply{}, ctx.Err()
			}
			if !hedgeFired && outstanding == 0 {
				// Primary failed before the hedge timer: promote the
				// hedge to an immediate retry.
				if r.breaker(secondary.ID).Allow() {
					hedgeFired = true
					r.hedges.Add(1)
					launch(secondary, true)
					outstanding++
				}
			}
		case <-hedgeTimer.C:
			if !hedgeFired && r.breaker(secondary.ID).Allow() {
				hedgeFired = true
				r.hedges.Add(1)
				launch(secondary, true)
				outstanding++
			}
		case <-ctx.Done():
			return Reply{}, ctx.Err()
		}
	}
	// Both racers failed; walk the rest of the candidate list with the
	// two burned attempts accounted for.
	if len(cands) > 2 {
		return r.walk(ctx, cands[2:], 2, method, path, body)
	}
	return Reply{}, fmt.Errorf("%w after 2 attempts: %v", ErrUnavailable, lastErr)
}

// Broadcast fans one GET out to every routable node concurrently and
// returns the per-node replies (nil body entries for nodes that
// failed). Bodies are detached from the pool — callers own them
// outright and may retain them (merged /metrics does exactly that).
func (r *Router) Broadcast(ctx context.Context, path string) map[string]Reply {
	_, nodes := r.mem.Routable()
	out := make(map[string]Reply, len(nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, nd := range nodes {
		wg.Add(1)
		go func(nd NodeInfo) {
			defer wg.Done()
			rep, err := r.try(ctx, nd, http.MethodGet, path, nil)
			if err == nil {
				rep.Detach()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				out[nd.ID] = Reply{NodeID: nd.ID}
				return
			}
			out[nd.ID] = rep
		}(nd)
	}
	wg.Wait()
	return out
}
