package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"idnlab/internal/api"
)

// Request coalescing: under concurrent single-detect load, many
// in-flight requests resolve to the same ring owner. Each would cost
// one upstream HTTP round trip; the worker answers them from the same
// per-key cache either way. The coalescer merges concurrent singles
// bound for the same owner into one upstream /v1/detect/batch call and
// demultiplexes the per-index results back to the waiting handlers —
// N round trips become one, and on rate-capped workers N admission
// tokens become one.
//
// State machine per (owner) window:
//
//	open    — created by the first submit; a flush timer is armed for
//	          CoalesceWindow. Later submits for the same owner append.
//	flushed — set under the lock by exactly one of: the size bound
//	          (len == CoalesceMax, flushed inline on the submitting
//	          goroutine) or the timer (flushed on the timer goroutine).
//	          Whoever sets it removes the window from the open map, so
//	          a submit can never land on a flushed window.
//
// Correctness properties the tests pin:
//   - a window of one falls back to the exact direct path (DoHedged:
//     hedging, breakers, Retry-After passthrough all preserved);
//   - responses are byte-identical to the uncoalesced path — the worker
//     computes batch items through the same per-key cache.Do singleflight
//     as singles, so coalescing never converts a cache hit into a miss;
//   - a lone request on a quiet gateway flushes within CoalesceWindow
//     (the timer is the no-traffic backstop, counted as a timer flush);
//   - a worker 429 fails the whole merged window with Retry-After, the
//     same all-or-nothing contract the batch endpoint itself has.
type coalescer struct {
	g    *Gateway
	mu   sync.Mutex
	open map[string]*cwindow // by owner node ID
}

// ccallResult is what a waiting handler receives: either a raw routed
// Reply (direct path — the handler passes status/body/Retry-After
// through and releases it) or a decoded DetectResponse (batched path).
type ccallResult struct {
	rep    Reply
	direct bool
	resp   api.DetectResponse
	err    error
}

// ccall is one waiting request. done is buffered so a flush never
// blocks on a handler that gave up (client disconnect).
type ccall struct {
	ace  string
	done chan ccallResult
}

type cwindow struct {
	key     string // routing key: first member's ACE
	calls   []*ccall
	timer   *time.Timer
	flushed bool
}

func newCoalescer(g *Gateway) *coalescer {
	return &coalescer{g: g, open: make(map[string]*cwindow)}
}

// submit enqueues one normalized single-detect for coalescing and
// returns the call whose done channel will carry the result.
func (c *coalescer) submit(ace string) (*ccall, error) {
	owner, ok := c.g.router.Owner(ace)
	if !ok {
		return nil, ErrNoNodes
	}
	call := &ccall{ace: ace, done: make(chan ccallResult, 1)}

	c.mu.Lock()
	w := c.open[owner.ID]
	if w == nil {
		w = &cwindow{key: ace}
		c.open[owner.ID] = w
		ownerID := owner.ID
		w.timer = time.AfterFunc(c.g.cfg.CoalesceWindow, func() { c.flushTimed(ownerID, w) })
	}
	w.calls = append(w.calls, call)
	if len(w.calls) >= c.g.cfg.CoalesceMax {
		// Size bound hit: this submitter flushes inline. Mark + unhook
		// under the lock so the timer (or another submit) cannot race.
		w.flushed = true
		delete(c.open, owner.ID)
		c.mu.Unlock()
		w.timer.Stop()
		c.flush(w)
		return call, nil
	}
	c.mu.Unlock()
	return call, nil
}

// flushTimed is the timer path: the window dispatches with however many
// calls accumulated during CoalesceWindow (usually one, on a quiet
// gateway — the starvation backstop).
func (c *coalescer) flushTimed(ownerID string, w *cwindow) {
	c.mu.Lock()
	if w.flushed {
		c.mu.Unlock()
		return
	}
	w.flushed = true
	if c.open[ownerID] == w {
		delete(c.open, ownerID)
	}
	c.mu.Unlock()
	c.g.metrics.coalTimeouts.Add(1)
	c.flush(w)
}

// fail delivers err to every waiting call.
func (w *cwindow) fail(err error) {
	for _, call := range w.calls {
		call.done <- ccallResult{err: err}
	}
}

// flush dispatches the window upstream and demultiplexes the results.
// It runs on either the size-bound submitter's goroutine or the timer
// goroutine; waiting handlers select on their own request contexts, so
// the flush context is the gateway's own upstream budget.
func (c *coalescer) flush(w *cwindow) {
	c.g.metrics.coalWindows.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.g.cfg.RequestTimeout)
	defer cancel()

	if len(w.calls) == 1 {
		// A window of one takes the exact uncoalesced path: hedged,
		// breaker-aware, Retry-After passed through raw.
		call := w.calls[0]
		body := api.AppendDetectRequest(nil, &api.DetectRequest{Domain: call.ace})
		rep, err := c.g.router.DoHedged(ctx, call.ace, http.MethodPost, "/v1/detect", body)
		call.done <- ccallResult{rep: rep, direct: true, err: err}
		return
	}

	c.g.metrics.coalBatched.Add(uint64(len(w.calls)))
	domains := make([]string, len(w.calls))
	for i, call := range w.calls {
		domains[i] = call.ace
	}
	body := api.AppendBatchRequest(nil, &api.BatchRequest{Domains: domains})
	rep, err := c.g.router.Do(ctx, w.key, http.MethodPost, "/v1/detect/batch", body)
	if err != nil {
		w.fail(err)
		return
	}
	switch rep.Status {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		retryAfter := rep.RetryAfter
		rep.Release()
		w.fail(&shedError{retryAfter: retryAfter})
		return
	default:
		status, node := rep.Status, rep.NodeID
		rep.Release()
		w.fail(fmt.Errorf("node %s: unexpected status %d", node, status))
		return
	}
	br, err := api.DecodeBatchResponseBytes(rep.Body)
	node := rep.NodeID
	rep.Release() // decoder copied every string out; buffer is free to reuse
	if err != nil {
		w.fail(fmt.Errorf("node %s: bad batch reply: %v", node, err))
		return
	}
	if len(br.Results) != len(w.calls) {
		w.fail(fmt.Errorf("node %s: %d results for %d coalesced requests", node, len(br.Results), len(w.calls)))
		return
	}
	for i, call := range w.calls {
		call.done <- ccallResult{resp: br.Results[i]}
	}
}
