// Coalescer integration tests: the correctness contract is that turning
// coalescing on is invisible to clients — byte-identical responses to
// the uncoalesced direct path — while merging concurrent singles into
// upstream batches. Run with -race: the coalescer's window state machine
// (size-bound flush vs timer flush) is exactly the kind of code a
// happy-path test passes and a race detector catches.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idnlab/internal/cluster"
)

// coalesceMetrics scrapes the gateway's coalescer counters.
func coalesceMetrics(t *testing.T, tc *testCluster) (windows, batched, timeouts uint64) {
	t.Helper()
	var m struct {
		Gateway struct {
			Windows  uint64 `json:"coalesce_windows"`
			Batched  uint64 `json:"coalesce_batched"`
			Timeouts uint64 `json:"coalesce_flush_timeout"`
		} `json:"gateway"`
	}
	_, body := tc.get("/metrics")
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("metrics decode: %v %q", err, body)
	}
	return m.Gateway.Windows, m.Gateway.Batched, m.Gateway.Timeouts
}

// ownerWorker resolves a key's ring owner to the harness worker serving
// it, so a test can capture the uncoalesced ground-truth response by
// posting straight to the worker.
func (tc *testCluster) ownerWorker(key string) *testWorker {
	tc.t.Helper()
	owner, ok := tc.gw.Router().Owner(key)
	if !ok {
		tc.t.Fatalf("no owner for %q", key)
	}
	for _, w := range tc.workers {
		if w.id == owner.ID {
			return w
		}
	}
	tc.t.Fatalf("owner %q not in harness", owner.ID)
	return nil
}

// postRaw posts to an arbitrary URL and returns status + body.
func (tc *testCluster) postRaw(url, body string) (int, string) {
	tc.t.Helper()
	resp, err := tc.client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		tc.t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

// TestCoalescerHammerMatchesDirect is the hammer: N goroutines fire
// singles for a fixed key set through a 2-worker coalescing gateway.
// Every 200 body must be byte-identical to the uncoalesced direct path
// (captured from the owning worker itself after warming its cache), and
// the run must actually coalesce (coalesce_batched > 0) — otherwise the
// test silently degrades into testing the direct path twice.
func TestCoalescerHammerMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tc := startClusterWith(t, 2, 2, func(c *cluster.GatewayConfig) {
		c.CoalesceWindow = 300 * time.Microsecond
		c.CoalesceMax = 16
	})
	defer tc.shutdown(nil)

	// Key set: a known homograph plus a spread of clean labels, enough
	// keys that both workers own several.
	keys := []string{"xn--pple-43d.com", "example.com"}
	for i := 0; i < 22; i++ {
		keys = append(keys, fmt.Sprintf("label-%d.com", i))
	}

	// Ground truth: warm each key at its owning worker (first request
	// populates the cache), then capture the steady cached:true body.
	// The coalesced path must reproduce these bytes exactly — including
	// cached:true, because worker batch items resolve through the same
	// per-key cache as singles.
	expected := make(map[string]string, len(keys))
	for _, k := range keys {
		w := tc.ownerWorker(k)
		body := fmt.Sprintf(`{"domain":%q}`, k)
		if code, _ := tc.postRaw(w.ts.URL+"/v1/detect", body); code != 200 {
			t.Fatalf("warm %s at %s: status %d", k, w.id, code)
		}
		code, resp := tc.postRaw(w.ts.URL+"/v1/detect", body)
		if code != 200 || !strings.Contains(resp, `"cached":true`) {
			t.Fatalf("steady-state %s at %s: %d %q", k, w.id, code, resp)
		}
		expected[k] = resp
	}

	const (
		goroutines = 40
		perG       = 150
	)
	var (
		wg       sync.WaitGroup
		ok2xx    atomic.Uint64
		shed     atomic.Uint64
		mismatch atomic.Uint64
		firstBad atomic.Value // string: first diverging (key, got) pair
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := keys[(g+i)%len(keys)]
				code, body := tc.post("/v1/detect", fmt.Sprintf(`{"domain":%q}`, k))
				switch {
				case code == 200:
					ok2xx.Add(1)
					if body != expected[k] {
						mismatch.Add(1)
						firstBad.CompareAndSwap(nil, fmt.Sprintf("key=%s got=%q want=%q", k, body, expected[k]))
					}
				case code == 429:
					shed.Add(1) // back-pressure, not an error
				default:
					mismatch.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("key=%s status=%d body=%q", k, code, body))
				}
			}
		}(g)
	}
	wg.Wait()

	if mismatch.Load() != 0 {
		t.Fatalf("%d coalesced responses diverged from the direct path; first: %s",
			mismatch.Load(), firstBad.Load())
	}
	if ok2xx.Load() < goroutines*perG/2 {
		t.Fatalf("hammer barely ran: %d ok, %d shed", ok2xx.Load(), shed.Load())
	}
	windows, batched, timeouts := coalesceMetrics(t, tc)
	t.Logf("coalescer: %d ok, %d shed; windows=%d batched=%d timer-flushes=%d",
		ok2xx.Load(), shed.Load(), windows, batched, timeouts)
	if batched == 0 {
		t.Fatal("hammer never coalesced: coalesce_batched == 0 (window too small for the harness?)")
	}
}

// TestCoalescerLoneRequestFlushes pins the starvation backstop: a single
// request on a quiet gateway must not wait for CoalesceMax-1 peers that
// will never arrive — the window timer flushes it within CoalesceWindow,
// and the flush is counted as a timer flush.
func TestCoalescerLoneRequestFlushes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tc := startClusterWith(t, 1, 1, func(c *cluster.GatewayConfig) {
		c.CoalesceWindow = 5 * time.Millisecond
		c.CoalesceMax = 64
	})
	defer tc.shutdown(nil)

	start := time.Now()
	code, body := tc.post("/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	elapsed := time.Since(start)
	if code != 200 || !strings.Contains(body, `"flagged":true`) {
		t.Fatalf("lone coalesced detect: %d %q", code, body)
	}
	// Generous bound: the request must clear in timer-flush time, not
	// hang until some other traffic fills the window.
	if elapsed > time.Second {
		t.Fatalf("lone request took %s — window never timer-flushed", elapsed)
	}
	windows, _, timeouts := coalesceMetrics(t, tc)
	if windows < 1 || timeouts < 1 {
		t.Fatalf("timer flush not counted: windows=%d timer-flushes=%d", windows, timeouts)
	}
}
