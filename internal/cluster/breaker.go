package cluster

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes a per-node circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 3).
	FailThreshold int
	// Cooldown is how long an open breaker blocks traffic before
	// allowing one half-open probe (default 2s).
	Cooldown time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a per-node circuit breaker: closed under normal operation,
// open after FailThreshold consecutive failures (requests fail fast
// without a connection attempt — the router skips to the next ring
// candidate instead of paying a dial timeout per request), and
// half-open after the cooldown, admitting exactly one probe whose
// outcome closes or re-opens the circuit. This is what makes a dead
// worker cost one failed dial per cooldown instead of one per request,
// and what heals the route automatically when the worker comes back.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	opens    uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown elapses, then transitions to
// half-open and admits a single probe (subsequent Allow calls return
// false until the probe reports Success or Failure).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			return true // the probe
		}
		return false
	default: // half-open: probe in flight
		return false
	}
}

// Success reports a successful request: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// Failure reports a failed request: in half-open it re-opens
// immediately; in closed it opens once the streak reaches the
// threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.cfg.FailThreshold {
		if b.state != breakerOpen {
			b.opens++
		}
		b.state = breakerOpen
		b.openedAt = b.cfg.Now()
	}
}

// State reports the breaker's state as a string for /clusterz.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Opens reports how many times the breaker has tripped.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
