package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeDoer routes requests to per-host handlers, counting calls.
type fakeDoer struct {
	mu       sync.Mutex
	handlers map[string]func(*http.Request) (*http.Response, error)
	calls    map[string]int
}

func newFakeDoer() *fakeDoer {
	return &fakeDoer{
		handlers: make(map[string]func(*http.Request) (*http.Response, error)),
		calls:    make(map[string]int),
	}
}

func (f *fakeDoer) set(host string, h func(*http.Request) (*http.Response, error)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[host] = h
}

func (f *fakeDoer) callCount(host string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[host]
}

func (f *fakeDoer) Do(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls[req.URL.Host]++
	h := f.handlers[req.URL.Host]
	f.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("fake: no handler for %s", req.URL.Host)
	}
	return h(req)
}

func okResponse(body string) func(*http.Request) (*http.Response, error) {
	return func(*http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(body)),
		}, nil
	}
}

func refuse() func(*http.Request) (*http.Response, error) {
	return func(*http.Request) (*http.Response, error) {
		return nil, errors.New("connection refused")
	}
}

// routerFixture wires a membership of n nodes to a router over fake.
func routerFixture(t *testing.T, n int, cfg RouterConfig, fake *fakeDoer) (*Membership, *Router, []NodeInfo) {
	t.Helper()
	m := NewMembership(MembershipConfig{HeartbeatInterval: time.Second, DeadFailStreak: 3})
	nodes := testNodes(n)
	for _, nd := range nodes {
		m.Join(nd.ID, nd.Addr)
		fake.set(nd.Addr, okResponse(`{"node":"`+nd.ID+`"}`))
	}
	cfg.Client = fake
	cfg.BaseBackoff = time.Millisecond
	cfg.MaxBackoff = 2 * time.Millisecond
	return m, NewRouter(m, cfg), nodes
}

func TestRouterRoutesToOwner(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 3, RouterConfig{}, fake)
	key := "xn--pple-43d.com"
	owner, ok := r.Owner(key)
	if !ok {
		t.Fatal("no owner")
	}
	rep, err := r.Do(context.Background(), key, http.MethodPost, "/v1/detect", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeID != owner.ID || rep.Attempts != 1 {
		t.Fatalf("rep = %+v, want owner %s in 1 attempt", rep, owner.ID)
	}
	if fake.callCount(owner.Addr) != 1 {
		t.Fatalf("owner got %d calls, want 1", fake.callCount(owner.Addr))
	}
}

func TestRouterRetriesToNextCandidate(t *testing.T) {
	fake := newFakeDoer()
	m, r, _ := routerFixture(t, 3, RouterConfig{MaxAttempts: 3}, fake)
	key := "xn--pple-43d.com"
	cands := r.Ring().Candidates(key, 0)
	fake.set(cands[0].Addr, refuse())

	rep, err := r.Do(context.Background(), key, http.MethodPost, "/v1/detect", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodeID != cands[1].ID {
		t.Fatalf("answered by %s, want second candidate %s", rep.NodeID, cands[1].ID)
	}
	if rep.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", rep.Attempts)
	}
	// The failure fed back into membership: owner is now suspect.
	if s := stateOf(t, m, cands[0].ID); s != StateSuspect {
		t.Fatalf("owner state = %s, want suspect after proxy failure", s)
	}
	if st := r.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

func TestRouter5xxIsFailure429PassesThrough(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 2, RouterConfig{}, fake)
	key := "example.com"
	cands := r.Ring().Candidates(key, 0)

	// 500 advances to the next candidate.
	fake.set(cands[0].Addr, func(*http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 500, Header: http.Header{}, Body: io.NopCloser(strings.NewReader("boom"))}, nil
	})
	rep, err := r.Do(context.Background(), key, http.MethodPost, "/v1/detect", nil)
	if err != nil || rep.NodeID != cands[1].ID {
		t.Fatalf("5xx not retried: rep=%+v err=%v", rep, err)
	}

	// 429 is an answer: passes through with Retry-After, no retry.
	fake.set(cands[0].Addr, func(*http.Request) (*http.Response, error) {
		h := http.Header{}
		h.Set("Retry-After", "1")
		return &http.Response{StatusCode: 429, Header: h, Body: io.NopCloser(strings.NewReader(`{"error":"saturated"}`))}, nil
	})
	before := fake.callCount(cands[1].Addr)
	rep, err = r.Do(context.Background(), key, http.MethodPost, "/v1/detect", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != 429 || rep.RetryAfter != "1" || rep.NodeID != cands[0].ID {
		t.Fatalf("429 passthrough: rep=%+v", rep)
	}
	if fake.callCount(cands[1].Addr) != before {
		t.Fatal("429 leaked a retry to the next candidate")
	}
}

func TestRouterBreakerSkipsDeadNodeWithoutAttempt(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 3, RouterConfig{
		MaxAttempts: 2,
		Breaker:     BreakerConfig{FailThreshold: 2, Cooldown: time.Hour},
	}, fake)
	key := "example.com"
	cands := r.Ring().Candidates(key, 0)
	fake.set(cands[0].Addr, refuse())

	// Two requests trip the owner's breaker (threshold 2)...
	for i := 0; i < 2; i++ {
		if _, err := r.Do(context.Background(), key, http.MethodPost, "/v1/detect", nil); err != nil {
			t.Fatal(err)
		}
	}
	ownerCalls := fake.callCount(cands[0].Addr)
	if ownerCalls != 2 {
		t.Fatalf("owner calls = %d, want 2", ownerCalls)
	}
	// ...after which the owner is skipped entirely: fail-fast, no dial.
	for i := 0; i < 5; i++ {
		rep, err := r.Do(context.Background(), key, http.MethodPost, "/v1/detect", nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NodeID != cands[1].ID || rep.Attempts != 1 {
			t.Fatalf("rep = %+v, want %s in 1 attempt (breaker skip)", rep, cands[1].ID)
		}
	}
	if got := fake.callCount(cands[0].Addr); got != ownerCalls {
		t.Fatalf("open breaker leaked %d calls to the dead node", got-ownerCalls)
	}
	if st := r.Stats(); st.Breakers[cands[0].ID] != "open" {
		t.Fatalf("breaker state = %q, want open", st.Breakers[cands[0].ID])
	}
}

func TestRouterAllCandidatesDown(t *testing.T) {
	fake := newFakeDoer()
	_, r, nodes := routerFixture(t, 3, RouterConfig{MaxAttempts: 3}, fake)
	for _, nd := range nodes {
		fake.set(nd.Addr, refuse())
	}
	_, err := r.Do(context.Background(), "example.com", http.MethodPost, "/v1/detect", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestRouterEmptyRing(t *testing.T) {
	m := NewMembership(MembershipConfig{})
	r := NewRouter(m, RouterConfig{Client: newFakeDoer()})
	if _, err := r.Do(context.Background(), "x.com", http.MethodGet, "/", nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestRouterRingCacheFollowsEpoch(t *testing.T) {
	fake := newFakeDoer()
	m, r, _ := routerFixture(t, 2, RouterConfig{}, fake)
	if got := r.Ring().Len(); got != 2 {
		t.Fatalf("ring len = %d, want 2", got)
	}
	// Same epoch: same compiled ring instance (cache hit).
	if r.Ring() != r.Ring() {
		t.Fatal("ring cache rebuilt without an epoch change")
	}
	m.Join("node-09", "127.0.0.1:9009")
	if got := r.Ring().Len(); got != 3 {
		t.Fatalf("ring len after join = %d, want 3", got)
	}
	// Fail streak kills node-09: ring shrinks again.
	for i := 0; i < 3; i++ {
		m.ObserveFailure("node-09")
	}
	if got := r.Ring().Len(); got != 2 {
		t.Fatalf("ring len after death = %d, want 2", got)
	}
}

func TestRouterHedgeWinsOnSlowPrimary(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 3, RouterConfig{Hedge: 5 * time.Millisecond}, fake)
	key := "example.com"
	cands := r.Ring().Candidates(key, 0)

	// Primary answers, but far slower than the hedge delay.
	fake.set(cands[0].Addr, func(req *http.Request) (*http.Response, error) {
		select {
		case <-time.After(500 * time.Millisecond):
			return okResponse("slow")(req)
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	})
	t0 := time.Now()
	rep, err := r.DoHedged(context.Background(), key, http.MethodPost, "/v1/detect", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hedged || rep.NodeID != cands[1].ID {
		t.Fatalf("rep = %+v, want hedged answer from %s", rep, cands[1].ID)
	}
	if el := time.Since(t0); el > 250*time.Millisecond {
		t.Fatalf("hedged request took %s — did not cut the tail", el)
	}
	st := r.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge / 1 win", st)
	}
}

func TestRouterHedgePrimaryFastPath(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 3, RouterConfig{Hedge: 50 * time.Millisecond}, fake)
	key := "example.com"
	cands := r.Ring().Candidates(key, 0)
	rep, err := r.DoHedged(context.Background(), key, http.MethodPost, "/v1/detect", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hedged || rep.NodeID != cands[0].ID {
		t.Fatalf("rep = %+v, want un-hedged owner answer", rep)
	}
	if fake.callCount(cands[1].Addr) != 0 {
		t.Fatal("hedge fired although the primary answered fast")
	}
	if st := r.Stats(); st.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0", st.Hedges)
	}
}

func TestRouterHedgePromotedOnPrimaryFailure(t *testing.T) {
	fake := newFakeDoer()
	_, r, _ := routerFixture(t, 3, RouterConfig{Hedge: time.Hour}, fake)
	key := "example.com"
	cands := r.Ring().Candidates(key, 0)
	fake.set(cands[0].Addr, refuse())
	rep, err := r.DoHedged(context.Background(), key, http.MethodPost, "/v1/detect", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Primary failed long before the (1h) hedge timer — the hedge is
	// promoted to an immediate retry instead of waiting.
	if !rep.Hedged || rep.NodeID != cands[1].ID {
		t.Fatalf("rep = %+v, want promoted hedge from %s", rep, cands[1].ID)
	}
}

func TestRouterBroadcast(t *testing.T) {
	fake := newFakeDoer()
	_, r, nodes := routerFixture(t, 3, RouterConfig{}, fake)
	fake.set(nodes[2].Addr, refuse())
	out := r.Broadcast(context.Background(), "/metrics")
	if len(out) != 3 {
		t.Fatalf("broadcast returned %d replies, want 3", len(out))
	}
	if out[nodes[0].ID].Status != 200 || out[nodes[1].ID].Status != 200 {
		t.Fatalf("healthy nodes: %+v", out)
	}
	if out[nodes[2].ID].Status != 0 {
		t.Fatalf("failed node should have zero Status: %+v", out[nodes[2].ID])
	}
}
