// Package cluster is the distribution tier over the online detection
// service (internal/serve): a heartbeat-based node registry with
// alive → suspect → dead health states, a rendezvous-hash ring that
// partitions the verdict keyspace so each domain's verdict is cached on
// exactly one owner (aggregate cache capacity grows with node count
// instead of being cloned per replica), and a routing client with
// per-node circuit breakers, bounded retries with jittered backoff to
// the next ring candidate, and optional hedged requests for tail
// latency. The Gateway ties them together in front of N idnserve
// workers: it splits batch bodies by ring owner, scatter/gathers
// sub-batches through an internal/pipeline engine with order-preserving
// reassembly, merges per-node metrics into a cluster view, and exposes
// membership at /clusterz.
//
// The paper's workload (per-IDN verdicts over ~1.6M names, §VI–§VII) is
// embarrassingly partitionable by domain — the same observation that
// lets ZDNS fan DNS measurement across many concurrent resolvers. The
// cluster layer applies it to serving: the normalized ACE form is both
// the cache key and the partition key, so two spellings of one name
// always land on the same owner and the owner's LRU is the only place
// that verdict is ever computed or stored.
package cluster

// NodeState is a member's health state. Transitions: a node joins (or
// heartbeats) into StateAlive; missing heartbeats demote it to
// StateSuspect and then StateDead on a timer; consecutive proxy
// failures reported by the router demote it immediately (a
// connection-refused is better evidence than a silent heartbeat gap);
// any successful heartbeat or proxied request resurrects it to
// StateAlive.
type NodeState string

const (
	StateAlive   NodeState = "alive"
	StateSuspect NodeState = "suspect"
	StateDead    NodeState = "dead"
)

// NodeInfo is one member's externally visible record.
type NodeInfo struct {
	// ID is the node's self-chosen stable identity (survives address
	// changes); it is also the rendezvous-hash input, so a node that
	// rejoins under the same ID reclaims exactly its old key range.
	ID string `json:"id"`
	// Addr is the node's reachable host:port.
	Addr string `json:"addr"`
	// State is the current health state.
	State NodeState `json:"state"`
	// LastBeatAgoMs is milliseconds since the last heartbeat or
	// successful proxied request.
	LastBeatAgoMs int64 `json:"lastBeatAgoMs"`
	// FailStreak is the count of consecutive proxy failures since the
	// last success.
	FailStreak int `json:"failStreak"`
}

// ClusterView is an epoch-stamped membership snapshot. The epoch
// increments on every membership or state change, so consumers (the
// router's ring cache, workers pulling membership) can detect staleness
// with one integer compare.
type ClusterView struct {
	Epoch uint64     `json:"epoch"`
	Nodes []NodeInfo `json:"nodes"`
}

// JoinRequest is the POST /v1/join body a worker sends to the gateway,
// both for initial registration and as its periodic heartbeat.
type JoinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// JoinResponse acknowledges a join/heartbeat with the current
// epoch-stamped membership view and the heartbeat cadence the gateway
// expects — the gateway drives the cadence so an operator retunes one
// flag, not N.
type JoinResponse struct {
	View        ClusterView `json:"view"`
	HeartbeatMs int64       `json:"heartbeatMs"`
}
