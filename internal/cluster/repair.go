package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// Gateway-side read-repair. When a single detect is answered by a node
// other than the key's ring owner — the hedged router failed over, or
// the owner just rebooted cold and the reply came from its replica —
// the gateway already holds exactly the bytes the owner is missing. It
// forwards them asynchronously to the owner's /v1/store/replicate, so
// a promoted replica's answers warm the owner back up while it
// recovers, instead of every repaired key costing the owner a detector
// pass later.
//
// This is strictly best-effort: the queue is bounded, overflow drops
// (and counts), and the workers' anti-entropy loop converges whatever
// the gateway drops. It must never add latency to the serving path —
// the enqueue is a non-blocking send of an already-copied body.

// repairItem is one pending backfill: the owner's address and a
// BatchResponse-shaped body wrapping the verdict it missed.
type repairItem struct {
	addr string
	body []byte
}

const repairQueueSize = 1024

// offerRepair wraps a successful DetectResponse body into the
// replication frame shape and enqueues it for the owner. body is the
// router reply's pooled buffer — copied here, before passthrough
// releases it.
func (g *Gateway) offerRepair(addr string, body []byte) {
	if g.repairCh == nil || len(body) == 0 {
		return
	}
	// Wrap without decoding: a BatchResponse with one result is
	// {"count":1,"flagged":0,"results":[<body>]} and the receiver only
	// reads Results (the wrapper's flagged count is not data).
	buf := make([]byte, 0, len(body)+len(repairPrefix)+len(repairSuffix))
	buf = append(buf, repairPrefix...)
	buf = append(buf, body...)
	buf = append(buf, repairSuffix...)
	select {
	case g.repairCh <- repairItem{addr: addr, body: buf}:
		g.metrics.repairForwards.Add(1)
	default:
		g.metrics.repairDropped.Add(1)
	}
}

const (
	repairPrefix = `{"count":1,"flagged":0,"results":[`
	repairSuffix = `]}`
)

// drainRepairs posts queued backfills until ctx is cancelled. One
// drainer is plenty: repair volume is bounded by failover volume, which
// is bounded by node-death frequency.
func (g *Gateway) drainRepairs(ctx context.Context) {
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		select {
		case <-ctx.Done():
			return
		case item := <-g.repairCh:
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				"http://"+item.addr+"/v1/store/replicate", bytes.NewReader(item.body))
			if err != nil {
				g.metrics.repairErrors.Add(1)
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				g.metrics.repairErrors.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				g.metrics.repairErrors.Add(1)
			}
		}
	}
}
