// Integration tests for the distribution tier: a real gateway fronting
// real serve.Server workers over loopback HTTP, including the
// kill-a-worker failover drill the subsystem exists for. External test
// package so it can import internal/serve (which itself imports
// internal/cluster for the peer wire types).
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idnlab/internal/cluster"
	"idnlab/internal/feat"
	"idnlab/internal/serve"
	"idnlab/internal/vstore"
)

// assertNoLeakedGoroutines retries until the goroutine count settles at
// or below the baseline (same contract as the pipeline test helper).
func assertNoLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after settle", before, now)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testCluster is a gateway plus N workers wired together over loopback.
type testCluster struct {
	t       *testing.T
	gw      *cluster.Gateway
	gwURL   string
	gwStop  context.CancelFunc
	gwDone  chan error
	workers []*testWorker
	client  *http.Client
	tr      *http.Transport
	// stat, when set before addWorker, boots workers with the
	// statistical model attached (ensemble verdicts end to end).
	stat *feat.Model
	// storeRoot, when set before addWorker, gives every worker a
	// durable verdict store at <storeRoot>/<id> — a worker restarted
	// under the same ID reopens its own log and boots warm.
	storeRoot string
}

type testWorker struct {
	id       string
	srv      *serve.Server
	ts       *httptest.Server
	peer     *serve.Peer
	peerStop context.CancelFunc
	peerDone chan struct{}
	syncDone chan struct{} // non-nil when RunStoreSync is running
}

// startCluster boots a gateway (fast failure-detection windows) and n
// workers that register through the real peer heartbeat loop.
func startCluster(t *testing.T, n int, minReady int) *testCluster {
	return startClusterWith(t, n, minReady, nil)
}

// startClusterWith is startCluster with a gateway-config hook: mutate
// (when non-nil) runs on the assembled config before NewGateway, so
// tests can flip features like request coalescing without duplicating
// the harness.
func startClusterWith(t *testing.T, n int, minReady int, mutate func(*cluster.GatewayConfig)) *testCluster {
	t.Helper()
	tr := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 16}
	tc := &testCluster{
		t:      t,
		tr:     tr,
		client: &http.Client{Timeout: 5 * time.Second, Transport: tr},
	}
	cfg := cluster.GatewayConfig{
		NodeID: "gw-test",
		Membership: cluster.MembershipConfig{
			HeartbeatInterval: 100 * time.Millisecond,
			SuspectAfter:      300 * time.Millisecond,
			DeadAfter:         2 * time.Second,
			DeadFailStreak:    2,
		},
		Router: cluster.RouterConfig{
			MaxAttempts: 3,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Breaker:     cluster.BreakerConfig{FailThreshold: 2, Cooldown: 250 * time.Millisecond},
			Client:      &http.Client{Transport: tr},
		},
		RequestTimeout: 2 * time.Second,
		MinReady:       minReady,
		// Generous drain budget: the whole suite runs in parallel with
		// CPU-heavy packages, and a contended drain blowing a tight
		// deadline fails the run as "context deadline exceeded" without
		// any real bug.
		DrainTimeout: 10 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	tc.gw = cluster.NewGateway(cfg)
	gwCtx, gwStop := context.WithCancel(context.Background())
	tc.gwStop = gwStop
	tc.gwDone = make(chan error, 1)
	ready := make(chan net.Addr, 1)
	go func() { tc.gwDone <- tc.gw.Run(gwCtx, "127.0.0.1:0", ready) }()
	select {
	case addr := <-ready:
		tc.gwURL = "http://" + addr.String()
	case err := <-tc.gwDone:
		t.Fatalf("gateway failed to start: %v", err)
	}

	for i := 0; i < n; i++ {
		tc.addWorker(fmt.Sprintf("w%d", i))
	}
	waitFor(t, 3*time.Second, "all workers alive", func() bool {
		return tc.gw.Membership().AliveCount() == n
	})
	return tc
}

// addWorker boots one serve.Server behind httptest and joins it to the
// gateway through a real peer loop.
func (tc *testCluster) addWorker(id string) *testWorker {
	tc.t.Helper()
	cfg := serve.Config{NodeID: id, TopK: 100, Workers: 2, Stat: tc.stat}
	if tc.storeRoot != "" {
		st, err := vstore.Open(vstore.Config{Dir: filepath.Join(tc.storeRoot, id), NoFsync: true})
		if err != nil {
			tc.t.Fatalf("open store for %s: %v", id, err)
		}
		cfg.Store = st
		// Fast cluster-sync cadences: the churn test needs anti-entropy
		// to converge inside the test window, not the production 15s.
		cfg.SyncInterval = 250 * time.Millisecond
		cfg.ReplicateInterval = 10 * time.Millisecond
		cfg.RepairTimeout = 150 * time.Millisecond
	}
	srv := serve.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	addr := strings.TrimPrefix(ts.URL, "http://")
	p := serve.NewPeer(tc.gwURL, id, addr)
	srv.AttachPeer(p)
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx) }()
	w := &testWorker{id: id, srv: srv, ts: ts, peer: p, peerStop: stop, peerDone: done}
	if cfg.Store != nil {
		w.syncDone = make(chan struct{})
		go func() { defer close(w.syncDone); srv.RunStoreSync(ctx) }()
	}
	tc.workers = append(tc.workers, w)
	return w
}

// workerByID returns the most recent worker registered under id (a
// restarted worker appends a fresh entry under the old identity).
func (tc *testCluster) workerByID(id string) *testWorker {
	tc.t.Helper()
	for i := len(tc.workers) - 1; i >= 0; i-- {
		if tc.workers[i].id == id {
			return tc.workers[i]
		}
	}
	tc.t.Fatalf("no worker %s", id)
	return nil
}

// storeStats scrapes one worker's /metrics store block directly.
func (tc *testCluster) storeStats(w *testWorker) serve.StoreStats {
	tc.t.Helper()
	resp, err := tc.client.Get(w.ts.URL + "/metrics")
	if err != nil {
		tc.t.Fatalf("worker %s metrics: %v", w.id, err)
	}
	defer resp.Body.Close()
	var m struct {
		Store serve.StoreStats `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		tc.t.Fatalf("worker %s metrics decode: %v", w.id, err)
	}
	return m.Store
}

// kill simulates a crashed worker: the peer stops heartbeating and the
// listener drops every connection.
func (w *testWorker) kill() {
	w.peerStop()
	<-w.peerDone
	if w.syncDone != nil {
		<-w.syncDone
	}
	w.ts.CloseClientConnections()
	w.ts.Close()
	// In-process "SIGKILL" needs the old incarnation's file handles and
	// committer goroutine released before a restart reopens the same
	// directory; torn-tail crash semantics are covered byte-for-byte by
	// the vstore recovery tests.
	if err := w.srv.CloseStore(); err != nil {
		panic(err)
	}
}

// shutdown tears the whole cluster down in reverse order.
func (tc *testCluster) shutdown(killed map[string]bool) {
	for _, w := range tc.workers {
		if killed[w.id] {
			continue
		}
		w.peerStop()
		<-w.peerDone
		if w.syncDone != nil {
			<-w.syncDone
		}
		w.ts.CloseClientConnections()
		w.ts.Close()
		if err := w.srv.CloseStore(); err != nil {
			tc.t.Errorf("close store %s: %v", w.id, err)
		}
	}
	tc.gwStop()
	if err := <-tc.gwDone; err != nil {
		tc.t.Errorf("gateway run: %v", err)
	}
	tc.tr.CloseIdleConnections()
	if dt, ok := http.DefaultTransport.(*http.Transport); ok {
		dt.CloseIdleConnections()
	}
}

func (tc *testCluster) post(path, body string) (int, string) {
	tc.t.Helper()
	resp, err := tc.client.Post(tc.gwURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (tc *testCluster) get(path string) (int, string) {
	tc.t.Helper()
	resp, err := tc.client.Get(tc.gwURL + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// nodeState extracts a node's state from the gateway's /clusterz body.
func (tc *testCluster) nodeState(id string) string {
	_, body := tc.get("/clusterz")
	var view struct {
		Nodes []cluster.NodeInfo `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		return ""
	}
	for _, n := range view.Nodes {
		if n.ID == id {
			return string(n.State)
		}
	}
	return ""
}

func TestGatewayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	before := runtime.NumGoroutine()
	tc := startCluster(t, 3, 2)
	defer assertNoLeakedGoroutines(t, before)
	defer tc.shutdown(nil)

	// Readiness: enough workers joined via real peer heartbeats.
	if code, body := tc.get("/readyz"); code != 200 || !strings.Contains(body, `"ready"`) {
		t.Fatalf("readyz: %d %q", code, body)
	}

	// Homograph detection end-to-end through the routing tier.
	code, body := tc.post("/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	if code != 200 || !strings.Contains(body, `"flagged":true`) {
		t.Fatalf("detect via gateway: %d %q", code, body)
	}
	// Deterministic ownership: the repeat hits the same worker's cache.
	if code, body := tc.post("/v1/detect", `{"domain":"xn--pple-43d.com"}`); code != 200 || !strings.Contains(body, `"cached":true`) {
		t.Fatalf("detect repeat not cached: %d %q", code, body)
	}
	// Invalid domains are answered at the gateway edge with 400.
	if code, _ := tc.post("/v1/detect", `{"domain":"exa mple.com"}`); code != 400 {
		t.Fatalf("invalid domain: %d, want 400", code)
	}

	// Batch: split across owners, reassembled in request order, invalid
	// entries answered locally with per-item errors.
	domains := []string{"xn--pple-43d.com", "bad..domain", "example.com", "label-7.com", "label-8.com"}
	reqBody, _ := json.Marshal(map[string][]string{"domains": domains})
	code, body = tc.post("/v1/detect/batch", string(reqBody))
	if code != 200 {
		t.Fatalf("batch: %d %q", code, body)
	}
	var br struct {
		Count   int `json:"count"`
		Results []struct {
			Input string `json:"input,omitempty"`
			Error string `json:"error,omitempty"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &br); err != nil || br.Count != 5 || len(br.Results) != 5 {
		t.Fatalf("batch shape: %v %q", err, body)
	}
	if br.Results[1].Error == "" || br.Results[1].Input != "bad..domain" {
		t.Fatalf("invalid entry not answered in place: %+v", br.Results[1])
	}

	// Oversized batches are rejected at the edge.
	over, _ := json.Marshal(map[string][]string{"domains": make([]string, 1000)})
	if code, _ := tc.post("/v1/detect/batch", string(over)); code != 413 {
		t.Fatalf("oversized batch: %d, want 413", code)
	}

	// Join validation.
	if code, _ := tc.post("/v1/join", `{"id":"x"}`); code != 400 {
		t.Fatalf("join without addr: %d, want 400", code)
	}
	if code, _ := tc.post("/v1/join", `{"id":"x","addr":"not-an-addr"}`); code != 400 {
		t.Fatalf("join with bad addr: %d, want 400", code)
	}

	// Merged metrics: gateway counters + aggregated worker cache stats.
	if code, body := tc.get("/metrics"); code != 200 ||
		!strings.Contains(body, `"cluster"`) || !strings.Contains(body, `"hits"`) ||
		!strings.Contains(body, `"partitionedCache":true`) {
		t.Fatalf("metrics: %d %q", code, body)
	}

	// The worker side of membership: each worker's /clusterz shows the
	// epoch-stamped view it pulled on its last heartbeat.
	wts := tc.workers[0].ts
	resp, err := tc.client.Get(wts.URL + "/clusterz")
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(wb), `"mode":"peer"`) || !strings.Contains(string(wb), `"joined":true`) {
		t.Fatalf("worker clusterz: %q", wb)
	}
}

func TestGatewayUnreadyWithoutWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	before := runtime.NumGoroutine()
	tc := startCluster(t, 0, 1)
	defer assertNoLeakedGoroutines(t, before)
	defer tc.shutdown(nil)

	if code, body := tc.get("/readyz"); code != 503 || !strings.Contains(body, `"unready"`) {
		t.Fatalf("readyz with no workers: %d %q", code, body)
	}
	if code, _ := tc.get("/healthz"); code != 200 {
		t.Fatal("healthz should stay 200 while unready")
	}
	if code, _ := tc.post("/v1/detect", `{"domain":"example.com"}`); code != 503 {
		t.Fatal("detect with empty ring should 503")
	}
}

// TestClusterFailover is the drill: three workers under live load, one
// killed mid-stream. Requirements — zero client-visible errors (429 is
// back-pressure, not an error), the dead worker's state reflected in
// /clusterz within the failure-detection window, survivors absorbing
// the key range, and no goroutine leaks after teardown.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	before := runtime.NumGoroutine()
	tc := startCluster(t, 3, 2)
	killed := map[string]bool{"w0": true}
	defer assertNoLeakedGoroutines(t, before)
	defer tc.shutdown(killed)

	// Load mix: zipf-ish repetition of a small label set (cache hits)
	// plus per-request uniques (detector work), singles and batches.
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		total     atomic.Uint64
		shed      atomic.Uint64
		badStatus atomic.Uint64
		transport atomic.Uint64
	)
	classify := func(code int, err error) {
		total.Add(1)
		switch {
		case err != nil:
			transport.Add(1)
		case code == 429:
			shed.Add(1)
		case code < 200 || code >= 300:
			badStatus.Add(1)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if i%5 == 4 {
					domains := []string{
						"xn--pple-43d.com",
						fmt.Sprintf("label-%d.com", i%97),
						fmt.Sprintf("uniq-%d-%d.com", g, i),
					}
					b, _ := json.Marshal(map[string][]string{"domains": domains})
					resp, err := tc.client.Post(tc.gwURL+"/v1/detect/batch", "application/json", bytes.NewReader(b))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						classify(resp.StatusCode, nil)
					} else {
						classify(0, err)
					}
					continue
				}
				b, _ := json.Marshal(map[string]string{"domain": fmt.Sprintf("label-%d.com", i%211)})
				resp, err := tc.client.Post(tc.gwURL+"/v1/detect", "application/json", bytes.NewReader(b))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					classify(resp.StatusCode, nil)
				} else {
					classify(0, err)
				}
			}
		}(g)
	}

	// Let the load warm up, then kill w0 mid-stream.
	time.Sleep(400 * time.Millisecond)
	killedAt := time.Now()
	tc.workers[0].kill()

	// Failure detection: proxy-failure feedback (DeadFailStreak=2) must
	// demote w0 to dead well inside the heartbeat-timer window.
	waitFor(t, 2*time.Second, "w0 demoted to dead", func() bool {
		return tc.nodeState("w0") == "dead"
	})
	detectLatency := time.Since(killedAt)

	// Keep loading on the survivors for a while after reassignment.
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	t.Logf("failover: %d requests, %d shed(429), %d bad status, %d transport errors; death detected in %s",
		total.Load(), shed.Load(), badStatus.Load(), transport.Load(), detectLatency)
	if total.Load() < 50 {
		t.Fatalf("load harness barely ran: %d requests", total.Load())
	}
	if badStatus.Load() != 0 || transport.Load() != 0 {
		t.Fatalf("client-visible errors during failover: %d bad status, %d transport",
			badStatus.Load(), transport.Load())
	}

	// Survivors still serve, readiness holds at 2/3, and the keyspace is
	// fully owned: the dead node's range reassigned.
	if code, _ := tc.get("/readyz"); code != 200 {
		t.Fatal("cluster unready after losing 1 of 3 workers")
	}
	if code, body := tc.post("/v1/detect", `{"domain":"xn--pple-43d.com"}`); code != 200 || !strings.Contains(body, `"flagged":true`) {
		t.Fatalf("post-failover detect: %d %q", code, body)
	}
	var st struct {
		RingSize int `json:"ringSize"`
	}
	_, body := tc.get("/clusterz")
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.RingSize != 2 {
		t.Fatalf("ring did not shrink to survivors: %v %q", err, body)
	}
}

// TestWorkerResurrection closes the loop: a worker that comes back (same
// ID) reclaims exactly its old key range because rendezvous placement
// depends only on node IDs.
func TestWorkerResurrection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	before := runtime.NumGoroutine()
	tc := startCluster(t, 2, 1)
	defer assertNoLeakedGoroutines(t, before)
	killed := map[string]bool{"w0": true}
	defer func() { tc.shutdown(killed) }()

	tc.workers[0].kill()
	// Drive traffic so proxy feedback (not just timers) sees the death.
	waitFor(t, 3*time.Second, "w0 dead", func() bool {
		tc.post("/v1/detect", `{"domain":"example.com"}`)
		return tc.nodeState("w0") == "dead"
	})

	// Same ID, new listener: rejoin resurrects in place.
	w := tc.addWorker("w0")
	waitFor(t, 2*time.Second, "w0 resurrected", func() bool {
		return tc.nodeState("w0") == "alive"
	})
	_ = w
	killed["w0"] = false
	var st struct {
		RingSize int `json:"ringSize"`
	}
	_, body := tc.get("/clusterz")
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.RingSize != 2 {
		t.Fatalf("ring after resurrection: %v %q", err, body)
	}
}

// TestClusterChurnTenWorkers is the scaled drill the durable store
// exists for: ten workers with per-node warm logs under sustained load
// while half the fleet is rolled through kill + rejoin one node at a
// time. Requirements — zero non-429 client-visible errors across the
// whole churn, every restarted worker boots warm from its own log, the
// gateway's aggregated store block counts all ten durable nodes again
// once the roll completes, and no goroutine leaks after teardown.
func TestClusterChurnTenWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	before := runtime.NumGoroutine()
	const n = 10
	tc := startCluster(t, 0, n-2)
	tc.storeRoot = t.TempDir()
	for i := 0; i < n; i++ {
		tc.addWorker(fmt.Sprintf("w%d", i))
	}
	waitFor(t, 5*time.Second, "all 10 workers alive", func() bool {
		return tc.gw.Membership().AliveCount() == n
	})
	defer assertNoLeakedGoroutines(t, before)
	defer tc.shutdown(nil)

	// Same load mix and error taxonomy as TestClusterFailover: repeated
	// labels (cache traffic, the store's bread and butter) plus uniques
	// (detector work), singles and batches, 429 counted as back-pressure.
	var (
		stop      atomic.Bool
		wg        sync.WaitGroup
		total     atomic.Uint64
		shed      atomic.Uint64
		badStatus atomic.Uint64
		transport atomic.Uint64
	)
	classify := func(code int, err error) {
		total.Add(1)
		switch {
		case err != nil:
			transport.Add(1)
		case code == 429:
			shed.Add(1)
		case code < 200 || code >= 300:
			badStatus.Add(1)
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if i%5 == 4 {
					domains := []string{
						"xn--pple-43d.com",
						fmt.Sprintf("label-%d.com", i%97),
						fmt.Sprintf("uniq-%d-%d.com", g, i),
					}
					b, _ := json.Marshal(map[string][]string{"domains": domains})
					resp, err := tc.client.Post(tc.gwURL+"/v1/detect/batch", "application/json", bytes.NewReader(b))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						classify(resp.StatusCode, nil)
					} else {
						classify(0, err)
					}
					continue
				}
				b, _ := json.Marshal(map[string]string{"domain": fmt.Sprintf("label-%d.com", i%211)})
				resp, err := tc.client.Post(tc.gwURL+"/v1/detect", "application/json", bytes.NewReader(b))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					classify(resp.StatusCode, nil)
				} else {
					classify(0, err)
				}
			}
		}(g)
	}

	// Warm the fleet, then roll kill + rejoin through half of it. Each
	// cycle waits for death detection and for the resurrected node to
	// rejoin before moving on — a rolling restart, not a massacre.
	time.Sleep(400 * time.Millisecond)
	const churn = 5
	for i := 0; i < churn; i++ {
		id := fmt.Sprintf("w%d", i)
		tc.workerByID(id).kill()
		waitFor(t, 3*time.Second, id+" demoted to dead", func() bool {
			return tc.nodeState(id) == "dead"
		})
		tc.addWorker(id)
		waitFor(t, 3*time.Second, id+" rejoined alive", func() bool {
			return tc.nodeState(id) == "alive"
		})
	}
	// Let the rejoined nodes run at least one anti-entropy round.
	time.Sleep(600 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	t.Logf("churn: %d requests, %d shed(429), %d bad status, %d transport errors",
		total.Load(), shed.Load(), badStatus.Load(), transport.Load())
	if total.Load() < 200 {
		t.Fatalf("load harness barely ran: %d requests", total.Load())
	}
	if badStatus.Load() != 0 || transport.Load() != 0 {
		t.Fatalf("client-visible errors during rolling churn: %d bad status, %d transport",
			badStatus.Load(), transport.Load())
	}

	// Every churned worker must have rebooted warm from its own log —
	// that is the store's whole promise — and run anti-entropy since.
	for i := 0; i < churn; i++ {
		w := tc.workerByID(fmt.Sprintf("w%d", i))
		st := tc.storeStats(w)
		if !st.Loaded {
			t.Fatalf("%s restarted without its store", w.id)
		}
		if st.WarmBootEntries == 0 {
			t.Errorf("%s rebooted cold: 0 warm-boot entries", w.id)
		}
		waitFor(t, 3*time.Second, w.id+" completed an anti-entropy round", func() bool {
			return tc.storeStats(w).SyncRounds > 0
		})
	}

	// The gateway's merged metrics see the full durable tier again, and
	// warm boots registered cluster-wide.
	_, body := tc.get("/metrics")
	var m struct {
		Cluster struct {
			Store struct {
				DurableNodes    int `json:"durableNodes"`
				WarmBootEntries int `json:"warmBootEntries"`
			} `json:"store"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("gateway metrics decode: %v %q", err, body)
	}
	if m.Cluster.Store.DurableNodes != n {
		t.Fatalf("gateway sees %d durable nodes, want %d", m.Cluster.Store.DurableNodes, n)
	}
	if m.Cluster.Store.WarmBootEntries == 0 {
		t.Fatal("no warm-boot entries registered cluster-wide after a 5-node roll")
	}

	// Rejoins surfaced through the membership hook.
	if code, body := tc.get("/metrics"); code != 200 || !strings.Contains(body, `"rejoins":`) {
		t.Fatalf("gateway metrics missing rejoin counter: %d %q", code, body)
	}
}
