package cluster

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic sweeps.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock  { return &fakeClock{t: time.Unix(1700000000, 0)} }
func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestMembership(clk *fakeClock) *Membership {
	return NewMembership(MembershipConfig{
		HeartbeatInterval: time.Second,
		SuspectAfter:      3 * time.Second,
		DeadAfter:         10 * time.Second,
		DeadFailStreak:    3,
		Now:               clk.now,
	})
}

func stateOf(t *testing.T, m *Membership, id string) NodeState {
	t.Helper()
	for _, n := range m.Snapshot().Nodes {
		if n.ID == id {
			return n.State
		}
	}
	t.Fatalf("node %s not in snapshot", id)
	return ""
}

func TestMembershipJoinEpochSemantics(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)

	e1 := m.Join("w1", "127.0.0.1:8181")
	if e1 != 1 {
		t.Fatalf("first join epoch = %d, want 1", e1)
	}
	// Plain heartbeat: no epoch bump — the router's ring cache stays hot.
	if e := m.Join("w1", "127.0.0.1:8181"); e != e1 {
		t.Fatalf("heartbeat bumped epoch %d -> %d", e1, e)
	}
	// Address change: bump.
	if e := m.Join("w1", "127.0.0.1:8182"); e != e1+1 {
		t.Fatalf("addr change epoch = %d, want %d", e, e1+1)
	}
	// Second node: bump.
	if e := m.Join("w2", "127.0.0.1:8183"); e != e1+2 {
		t.Fatalf("new node epoch = %d, want %d", e, e1+2)
	}
}

func TestMembershipSweepAgesThroughSuspectToDead(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Join("w1", "127.0.0.1:8181")

	// Within SuspectAfter: still alive, sweep is a no-op.
	clk.advance(2 * time.Second)
	if m.Sweep() {
		t.Fatal("sweep changed state within SuspectAfter")
	}
	if s := stateOf(t, m, "w1"); s != StateAlive {
		t.Fatalf("state = %s, want alive", s)
	}

	// Past SuspectAfter: suspect.
	clk.advance(2 * time.Second) // 4s silent
	if !m.Sweep() {
		t.Fatal("sweep did not demote past SuspectAfter")
	}
	if s := stateOf(t, m, "w1"); s != StateSuspect {
		t.Fatalf("state = %s, want suspect", s)
	}
	// Suspect nodes remain routable — breakers gate the traffic.
	if _, nodes := m.Routable(); len(nodes) != 1 {
		t.Fatalf("suspect node dropped from routable set: %v", nodes)
	}

	// Past DeadAfter: dead, and out of the routable set.
	clk.advance(7 * time.Second) // 11s silent
	if !m.Sweep() {
		t.Fatal("sweep did not demote past DeadAfter")
	}
	if s := stateOf(t, m, "w1"); s != StateDead {
		t.Fatalf("state = %s, want dead", s)
	}
	if _, nodes := m.Routable(); len(nodes) != 0 {
		t.Fatalf("dead node still routable: %v", nodes)
	}
	// Dead nodes stay visible in the snapshot for operators.
	if len(m.Snapshot().Nodes) != 1 {
		t.Fatal("dead node vanished from snapshot")
	}
}

func TestMembershipHeartbeatResurrects(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Join("w1", "127.0.0.1:8181")
	clk.advance(11 * time.Second)
	m.Sweep()
	if s := stateOf(t, m, "w1"); s != StateDead {
		t.Fatalf("setup: state = %s, want dead", s)
	}
	before := m.Epoch()
	if e := m.Join("w1", "127.0.0.1:8181"); e != before+1 {
		t.Fatalf("resurrection epoch = %d, want %d", e, before+1)
	}
	if s := stateOf(t, m, "w1"); s != StateAlive {
		t.Fatalf("state after resurrection = %s, want alive", s)
	}
	if m.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d, want 1", m.AliveCount())
	}
}

func TestMembershipObserveFailureFastPath(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Join("w1", "127.0.0.1:8181")

	// One failure: suspect immediately — faster than the sweep timers.
	m.ObserveFailure("w1")
	if s := stateOf(t, m, "w1"); s != StateSuspect {
		t.Fatalf("after 1 failure: state = %s, want suspect", s)
	}
	// DeadFailStreak consecutive failures: dead, without any clock
	// advance at all.
	m.ObserveFailure("w1")
	m.ObserveFailure("w1")
	if s := stateOf(t, m, "w1"); s != StateDead {
		t.Fatalf("after 3 failures: state = %s, want dead", s)
	}
	if _, nodes := m.Routable(); len(nodes) != 0 {
		t.Fatalf("fail-streak-dead node still routable: %v", nodes)
	}

	// A success resurrects: traffic is evidence of life.
	m.ObserveSuccess("w1")
	if s := stateOf(t, m, "w1"); s != StateAlive {
		t.Fatalf("after success: state = %s, want alive", s)
	}

	// Unknown IDs are ignored without panicking.
	m.ObserveFailure("ghost")
	m.ObserveSuccess("ghost")
}

func TestMembershipSweepNeverResurrects(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Join("w1", "127.0.0.1:8181")
	m.ObserveFailure("w1")
	m.ObserveFailure("w1")
	m.ObserveFailure("w1") // dead by fail streak
	// Its lastBeat is still fresh; a sweep must NOT promote dead → alive.
	clk.advance(time.Second)
	m.Sweep()
	if s := stateOf(t, m, "w1"); s != StateDead {
		t.Fatalf("sweep resurrected a dead node: %s", s)
	}
}

func TestMembershipSnapshotSorted(t *testing.T) {
	clk := newFakeClock()
	m := newTestMembership(clk)
	m.Join("w3", "a")
	m.Join("w1", "b")
	m.Join("w2", "c")
	v := m.Snapshot()
	if len(v.Nodes) != 3 || v.Nodes[0].ID != "w1" || v.Nodes[1].ID != "w2" || v.Nodes[2].ID != "w3" {
		t.Fatalf("snapshot not sorted by ID: %+v", v.Nodes)
	}
	clk.advance(1500 * time.Millisecond)
	for _, n := range m.Snapshot().Nodes {
		if n.LastBeatAgoMs != 1500 {
			t.Fatalf("LastBeatAgoMs = %d, want 1500", n.LastBeatAgoMs)
		}
	}
}
