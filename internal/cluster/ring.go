package cluster

// Rendezvous (highest-random-weight) hashing over normalized ACE keys.
// Rendezvous beats a token ring here for three reasons that match the
// verdict-cache workload exactly:
//
//  1. Minimal disruption by construction: removing a node remaps only
//     the keys that node owned (expected 1/N of the keyspace), and
//     adding a node steals only the keys it now wins — no token
//     placement to tune, no virtual-node count to balance.
//  2. Determinism across restarts: ownership is a pure function of
//     (node IDs, key), so a restarted gateway computes the identical
//     assignment and the workers' partitioned caches stay warm.
//  3. A free failover order: sorting nodes by their per-key score gives
//     each key a stable candidate list; the router retries down that
//     list, so a key's fallback target is as deterministic as its owner.
//
// Scores mix a per-node ID hash with the key hash through a splitmix64
// finalizer — cheap (one multiply-xor chain per node per lookup, and
// node counts are small) and well distributed.

// ringNode is one member with its precomputed ID hash.
type ringNode struct {
	info NodeInfo
	h    uint64
}

// Ring is an immutable ownership table over a membership snapshot.
// Build with NewRing; lookups are safe for concurrent use.
type Ring struct {
	nodes []ringNode
}

// NewRing builds a ring over nodes. Order of the input is irrelevant:
// ownership depends only on the set of node IDs.
func NewRing(nodes []NodeInfo) *Ring {
	r := &Ring{nodes: make([]ringNode, len(nodes))}
	for i, n := range nodes {
		r.nodes[i] = ringNode{info: n, h: hash64(n.ID)}
	}
	return r
}

// Len reports the number of nodes in the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// score is the rendezvous weight of node h for key hash kh.
func score(kh, h uint64) uint64 { return mix64(kh ^ h) }

// Owner returns the node that owns key (the highest-score node), or
// ok=false on an empty ring. Ties (astronomically unlikely) break by
// node ID so ownership stays total and deterministic.
func (r *Ring) Owner(key string) (NodeInfo, bool) {
	if len(r.nodes) == 0 {
		return NodeInfo{}, false
	}
	kh := hash64(key)
	best := 0
	bestScore := score(kh, r.nodes[0].h)
	for i := 1; i < len(r.nodes); i++ {
		s := score(kh, r.nodes[i].h)
		if s > bestScore || (s == bestScore && r.nodes[i].info.ID < r.nodes[best].info.ID) {
			best, bestScore = i, s
		}
	}
	return r.nodes[best].info, true
}

// Candidates returns up to k nodes for key in descending score order:
// element 0 is the owner, the rest is the deterministic failover
// sequence the router walks on retries. k <= 0 selects all nodes.
func (r *Ring) Candidates(key string, k int) []NodeInfo {
	n := len(r.nodes)
	if n == 0 {
		return nil
	}
	if k <= 0 || k > n {
		k = n
	}
	kh := hash64(key)
	ss := make([]scoredNode, n)
	for i := range r.nodes {
		ss[i] = scoredNode{s: score(kh, r.nodes[i].h), i: i}
	}
	// Insertion sort by descending score (node counts are small; avoids
	// sort.Slice's closure allocation on the hot path).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && r.before(ss[j], ss[j-1]); j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
	out := make([]NodeInfo, k)
	for i := 0; i < k; i++ {
		out[i] = r.nodes[ss[i].i].info
	}
	return out
}

// scoredNode pairs a node index with its per-key rendezvous weight.
type scoredNode struct {
	s uint64
	i int
}

// before orders a ahead of b: descending score, ID tie-break.
func (r *Ring) before(a, b scoredNode) bool {
	if a.s != b.s {
		return a.s > b.s
	}
	return r.nodes[a.i].info.ID < r.nodes[b.i].info.ID
}

// hash64 is FNV-1a 64 — the same key hash family the verdict cache
// shards with, applied here to whole strings.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the splitmix64 finalizer: a fast bijective mixer that turns
// the xor of two hashes into a uniformly distributed weight.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
