// Ensemble verdicts through the distribution tier: a gateway fronting
// stat-enabled workers must pass the extended wire format — statistical
// match, per-detector confidence, suspicion level — through single
// routing and batch scatter/gather without loss. The byte-level
// round-trip contract lives in internal/api's golden tests; this is the
// live proof over real workers.
package cluster_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"idnlab/internal/api"
	"idnlab/internal/feat"
)

func TestGatewayEnsembleScatterGather(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	model, _, _, err := feat.TrainCorpus(2018, 50, feat.TrainConfig{})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	// Boot the gateway empty, then join stat-enabled workers: the stat
	// field must be set before addWorker constructs the serve.Config.
	tc := startCluster(t, 0, 1)
	defer tc.shutdown(nil)
	tc.stat = model
	tc.addWorker("s0")
	tc.addWorker("s1")
	waitFor(t, 3*time.Second, "stat workers alive", func() bool {
		return tc.gw.Membership().AliveCount() == 2
	})

	// Single detect through ring routing: the canonical homograph must
	// arrive with the full ensemble block intact.
	code, body := tc.post("/v1/detect", `{"domain":"xn--pple-43d.com"}`)
	if code != http.StatusOK {
		t.Fatalf("detect: status %d body %s", code, body)
	}
	var single api.DetectResponse
	if err := json.Unmarshal([]byte(body), &single); err != nil {
		t.Fatalf("decode single: %v", err)
	}
	if !single.Flagged || single.Suspicion != "high" || single.Confidence == nil ||
		single.Confidence.Homograph <= 0 {
		t.Errorf("ensemble fields lost through gateway routing: %s", body)
	}

	// Batch scatter/gather: enough distinct domains to split across
	// both ring owners, reassembled index-aligned with ensemble fields.
	domains := []string{"xn--pple-43d.com", "example.com", "xn--80ak6aa92e.com", "cloudhub.net"}
	req, _ := json.Marshal(api.BatchRequest{Domains: domains})
	code, body = tc.post("/v1/detect/batch", string(req))
	if code != http.StatusOK {
		t.Fatalf("batch: status %d body %s", code, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal([]byte(body), &br); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	if br.Count != len(domains) || len(br.Results) != len(domains) {
		t.Fatalf("batch shape: count=%d results=%d want %d", br.Count, len(br.Results), len(domains))
	}
	for i, r := range br.Results {
		if r.Domain != domains[i] {
			t.Errorf("result %d misaligned: got %q want %q", i, r.Domain, domains[i])
		}
		// Every worker in this cluster has the model, so every verdict
		// must carry a confidence block and a suspicion level.
		if r.Confidence == nil || r.Suspicion == "" {
			t.Errorf("result %d (%s) lost ensemble fields: %+v", i, domains[i], r.Verdict)
		}
	}
	if got := br.Results[0]; !got.Flagged || got.Suspicion != "high" {
		t.Errorf("homograph verdict degraded through scatter/gather: %+v", got.Verdict)
	}
	if got := br.Results[1]; got.Flagged || got.Suspicion != "none" {
		t.Errorf("clean ASCII verdict degraded: %+v", got.Verdict)
	}

	// The reassembled bytes themselves must contain the ensemble keys —
	// guards against a lossy intermediate struct in the gather path.
	for _, key := range []string{`"confidence"`, `"suspicion"`} {
		if !strings.Contains(body, key) {
			t.Errorf("reassembled batch body missing %s: %s", key, body)
		}
	}

	// The same batch again is cache-hot on the owners; verdicts must be
	// stable (the ensemble fields are cached with the verdict, not
	// recomputed into something else).
	code, body2 := tc.post("/v1/detect/batch", string(req))
	if code != http.StatusOK {
		t.Fatalf("batch rerun: status %d", code)
	}
	var br2 api.BatchResponse
	if err := json.Unmarshal([]byte(body2), &br2); err != nil {
		t.Fatalf("decode rerun: %v", err)
	}
	for i := range br.Results {
		a, _ := json.Marshal(br.Results[i].Verdict)
		b, _ := json.Marshal(br2.Results[i].Verdict)
		if string(a) != string(b) {
			t.Errorf("verdict %d unstable across cache hit:\n first %s\nsecond %s", i, a, b)
		}
	}
}
