package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testNodes builds n synthetic NodeInfos with stable IDs.
func testNodes(n int) []NodeInfo {
	nodes := make([]NodeInfo, n)
	for i := range nodes {
		nodes[i] = NodeInfo{ID: fmt.Sprintf("node-%02d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i), State: StateAlive}
	}
	return nodes
}

// testKeys builds a synthetic ACE-shaped keyspace.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("xn--label-%05d.com", i)
	}
	return keys
}

// TestRingOwnerDeterministicAcrossConstructionOrder is the "gateway
// restart" property: ownership is a pure function of the node ID set, so
// a ring rebuilt from a shuffled membership snapshot assigns every key
// identically and the workers' partitioned caches stay warm.
func TestRingOwnerDeterministicAcrossConstructionOrder(t *testing.T) {
	nodes := testNodes(8)
	keys := testKeys(5000)
	base := NewRing(nodes)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]NodeInfo(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r2 := NewRing(shuffled)
		for _, k := range keys {
			a, _ := base.Owner(k)
			b, _ := r2.Owner(k)
			if a.ID != b.ID {
				t.Fatalf("trial %d: key %q owner %s != %s after shuffle", trial, k, a.ID, b.ID)
			}
		}
	}
}

// TestRingRemovalRemapsOnlyRemovedNodesKeys is the minimal-disruption
// property: removing one of N nodes must move ONLY the keys that node
// owned — every other key keeps its owner — and the moved fraction must
// be close to 1/N (within 2x, generous for 5k keys).
func TestRingRemovalRemapsOnlyRemovedNodesKeys(t *testing.T) {
	const n = 8
	nodes := testNodes(n)
	keys := testKeys(5000)
	full := NewRing(nodes)

	for victim := 0; victim < n; victim++ {
		survivors := make([]NodeInfo, 0, n-1)
		for i, nd := range nodes {
			if i != victim {
				survivors = append(survivors, nd)
			}
		}
		reduced := NewRing(survivors)
		moved := 0
		for _, k := range keys {
			before, _ := full.Owner(k)
			after, _ := reduced.Owner(k)
			if before.ID == nodes[victim].ID {
				if after.ID == before.ID {
					t.Fatalf("key %q still owned by removed node %s", k, before.ID)
				}
				moved++
				continue
			}
			if after.ID != before.ID {
				t.Fatalf("victim %s: key %q moved %s -> %s though its owner survived",
					nodes[victim].ID, k, before.ID, after.ID)
			}
		}
		frac := float64(moved) / float64(len(keys))
		if frac > 2.0/float64(n) {
			t.Fatalf("removing %s moved %.1f%% of keys, want <= %.1f%%",
				nodes[victim].ID, 100*frac, 200.0/float64(n))
		}
	}
}

// TestRingAdditionStealsBoundedShare mirrors the removal property for
// growth: a new node steals roughly 1/(N+1) of the keyspace and every
// key it does not steal keeps its owner.
func TestRingAdditionStealsBoundedShare(t *testing.T) {
	const n = 8
	nodes := testNodes(n)
	keys := testKeys(5000)
	before := NewRing(nodes)
	grown := NewRing(append(append([]NodeInfo(nil), nodes...),
		NodeInfo{ID: "node-99", Addr: "127.0.0.1:9099", State: StateAlive}))

	stolen := 0
	for _, k := range keys {
		a, _ := before.Owner(k)
		b, _ := grown.Owner(k)
		if b.ID == "node-99" {
			stolen++
			continue
		}
		if a.ID != b.ID {
			t.Fatalf("key %q moved %s -> %s though neither is the new node", k, a.ID, b.ID)
		}
	}
	frac := float64(stolen) / float64(len(keys))
	if frac > 2.0/float64(n+1) {
		t.Fatalf("new node stole %.1f%% of keys, want <= %.1f%%", 100*frac, 200.0/float64(n+1))
	}
	if stolen == 0 {
		t.Fatal("new node stole no keys at all")
	}
}

// TestRingBalance sanity-checks the load spread: with splitmix64-mixed
// scores no node should own more than ~2.5x its fair share.
func TestRingBalance(t *testing.T) {
	const n = 8
	r := NewRing(testNodes(n))
	keys := testKeys(8000)
	counts := make(map[string]int)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring?")
		}
		counts[o.ID]++
	}
	fair := len(keys) / n
	for id, c := range counts {
		if c > fair*5/2 || c < fair*2/5 {
			t.Fatalf("node %s owns %d keys, fair share %d — badly unbalanced: %v", id, c, fair, counts)
		}
	}
}

// TestRingCandidates pins the candidate-list contract: element 0 is the
// owner, entries are distinct, k bounds the length, and the failover
// order itself is deterministic.
func TestRingCandidates(t *testing.T) {
	r := NewRing(testNodes(8))
	for _, k := range testKeys(100) {
		owner, _ := r.Owner(k)
		cands := r.Candidates(k, 3)
		if len(cands) != 3 {
			t.Fatalf("key %q: got %d candidates, want 3", k, len(cands))
		}
		if cands[0].ID != owner.ID {
			t.Fatalf("key %q: candidate[0]=%s, Owner=%s", k, cands[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c.ID] {
				t.Fatalf("key %q: duplicate candidate %s", k, c.ID)
			}
			seen[c.ID] = true
		}
		again := r.Candidates(k, 3)
		for i := range cands {
			if cands[i].ID != again[i].ID {
				t.Fatalf("key %q: candidate order not deterministic", k)
			}
		}
		all := r.Candidates(k, 0)
		if len(all) != 8 {
			t.Fatalf("key %q: k<=0 should select all 8 nodes, got %d", k, len(all))
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil)
	if _, ok := empty.Owner("x.com"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if c := empty.Candidates("x.com", 3); c != nil {
		t.Fatalf("empty ring returned candidates: %v", c)
	}
	single := NewRing(testNodes(1))
	o, ok := single.Owner("x.com")
	if !ok || o.ID != "node-00" {
		t.Fatalf("single ring: got %v/%v", o, ok)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(testNodes(8))
	keys := testKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}

func BenchmarkRingCandidates(b *testing.B) {
	r := NewRing(testNodes(8))
	keys := testKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Candidates(keys[i%len(keys)], 3)
	}
}
