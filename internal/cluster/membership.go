package cluster

import (
	"context"
	"sort"
	"sync"
	"time"
)

// MembershipConfig parameterizes the registry. The zero value selects
// defaults suitable for a LAN cluster (1s heartbeats).
type MembershipConfig struct {
	// HeartbeatInterval is the cadence advertised to workers in
	// JoinResponse (default 1s). The sweeper runs at half this interval.
	HeartbeatInterval time.Duration
	// SuspectAfter demotes a silent node to StateSuspect (default
	// 3×HeartbeatInterval); DeadAfter to StateDead (default 10×).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// DeadFailStreak is the number of consecutive proxy failures that
	// demotes a node straight to StateDead without waiting for the
	// heartbeat timers (default 3). Connection-refused evidence is
	// stronger and faster than a heartbeat gap.
	DeadFailStreak int
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.DeadFailStreak <= 0 {
		c.DeadFailStreak = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// member is one node's mutable record, guarded by Membership.mu.
type member struct {
	id         string
	addr       string
	state      NodeState
	lastBeat   time.Time
	failStreak int
}

// Membership is the gateway's node registry: workers join (and
// heartbeat by re-joining), the sweeper ages silent nodes through
// suspect to dead, and the router feeds back per-request evidence
// (success resurrects, consecutive failures demote). Every change bumps
// the epoch, which is what invalidates the router's cached ring.
//
// Dead nodes stay in the registry (visible in /clusterz with their
// state) so operators can see what fell out; a dead node that
// heartbeats again is resurrected in place and — because ring placement
// depends only on node IDs — reclaims exactly its old key range.
type Membership struct {
	cfg MembershipConfig

	mu       sync.Mutex
	nodes    map[string]*member
	epoch    uint64
	onRejoin func(id string)
}

// OnRejoin registers a hook invoked (outside the registry lock) each
// time a previously dead node comes back — a heartbeat or request
// success resurrecting it. The gateway uses it to count rejoins; the
// returning worker's own anti-entropy loop does the actual catch-up.
// Set before the registry sees traffic.
func (m *Membership) OnRejoin(fn func(id string)) { m.onRejoin = fn }

// NewMembership builds an empty registry.
func NewMembership(cfg MembershipConfig) *Membership {
	return &Membership{cfg: cfg.withDefaults(), nodes: make(map[string]*member)}
}

// HeartbeatInterval reports the advertised heartbeat cadence.
func (m *Membership) HeartbeatInterval() time.Duration { return m.cfg.HeartbeatInterval }

// Epoch reports the current membership epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Join registers or heartbeats a node and returns the new epoch. A
// fresh node, an address change, or a state resurrection bumps the
// epoch; a plain heartbeat from a healthy node does not (so the router's
// ring cache stays hot under steady state).
func (m *Membership) Join(id, addr string) uint64 {
	now := m.cfg.Now()
	m.mu.Lock()
	n, ok := m.nodes[id]
	if !ok {
		m.nodes[id] = &member{id: id, addr: addr, state: StateAlive, lastBeat: now}
		m.epoch++
		epoch := m.epoch
		m.mu.Unlock()
		return epoch
	}
	rejoined := n.state == StateDead
	changed := n.addr != addr || n.state != StateAlive
	n.addr = addr
	n.state = StateAlive
	n.lastBeat = now
	n.failStreak = 0
	if changed {
		m.epoch++
	}
	epoch := m.epoch
	hook := m.onRejoin
	m.mu.Unlock()
	if rejoined && hook != nil {
		hook(id)
	}
	return epoch
}

// ObserveSuccess records a successful proxied request to id: evidence
// the node is alive, refreshing its heartbeat and resurrecting it if it
// had been demoted. Under load, traffic itself keeps members fresh —
// heartbeats only matter for idle nodes.
func (m *Membership) ObserveSuccess(id string) {
	now := m.cfg.Now()
	m.mu.Lock()
	n, ok := m.nodes[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	rejoined := n.state == StateDead
	n.lastBeat = now
	n.failStreak = 0
	if n.state != StateAlive {
		n.state = StateAlive
		m.epoch++
	}
	hook := m.onRejoin
	m.mu.Unlock()
	if rejoined && hook != nil {
		hook(id)
	}
}

// ObserveFailure records a failed proxied request to id: the node is
// demoted to suspect immediately and to dead after DeadFailStreak
// consecutive failures — much faster than waiting out the heartbeat
// timers, which is what lets a killed worker's key range be reassigned
// while requests are still in flight.
func (m *Membership) ObserveFailure(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return
	}
	n.failStreak++
	want := StateSuspect
	if n.failStreak >= m.cfg.DeadFailStreak {
		want = StateDead
	}
	if n.state != want && n.state != StateDead {
		n.state = want
		m.epoch++
	}
}

// Sweep ages silent nodes: past SuspectAfter → suspect, past DeadAfter
// → dead. It reports whether anything changed (and bumps the epoch if
// so). Sweep never resurrects — only heartbeats and successes do.
func (m *Membership) Sweep() bool {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, n := range m.nodes {
		age := now.Sub(n.lastBeat)
		var want NodeState
		switch {
		case age > m.cfg.DeadAfter:
			want = StateDead
		case age > m.cfg.SuspectAfter:
			want = StateSuspect
		default:
			continue
		}
		// Only demote: suspect→dead, alive→suspect/dead.
		if rank(want) > rank(n.state) {
			n.state = want
			changed = true
		}
	}
	if changed {
		m.epoch++
	}
	return changed
}

func rank(s NodeState) int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	default:
		return 2
	}
}

// Run sweeps on a ticker (half the heartbeat interval) until ctx is
// cancelled.
func (m *Membership) Run(ctx context.Context) {
	tick := time.NewTicker(m.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			m.Sweep()
		case <-ctx.Done():
			return
		}
	}
}

// Snapshot returns the epoch-stamped view of every known node, sorted
// by ID for deterministic output.
func (m *Membership) Snapshot() ClusterView {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	v := ClusterView{Epoch: m.epoch, Nodes: make([]NodeInfo, 0, len(m.nodes))}
	for _, n := range m.nodes {
		v.Nodes = append(v.Nodes, NodeInfo{
			ID:            n.id,
			Addr:          n.addr,
			State:         n.state,
			LastBeatAgoMs: now.Sub(n.lastBeat).Milliseconds(),
			FailStreak:    n.failStreak,
		})
	}
	sort.Slice(v.Nodes, func(i, j int) bool { return v.Nodes[i].ID < v.Nodes[j].ID })
	return v
}

// Routable returns the epoch and the nodes the ring may route to:
// everything not dead. Suspect nodes stay routable (their circuit
// breakers gate actual traffic) so a transient blip does not reshuffle
// the whole keyspace.
func (m *Membership) Routable() (uint64, []NodeInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes := make([]NodeInfo, 0, len(m.nodes))
	for _, n := range m.nodes {
		if n.state != StateDead {
			nodes = append(nodes, NodeInfo{ID: n.id, Addr: n.addr, State: n.state})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return m.epoch, nodes
}

// AliveCount reports the number of members currently in StateAlive.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, node := range m.nodes {
		if node.state == StateAlive {
			n++
		}
	}
	return n
}
