package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: 2 * time.Second, Now: clk.now})

	if !b.Allow() {
		t.Fatal("fresh breaker should allow")
	}
	b.Failure()
	b.Failure()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("2 failures should not open (state=%s)", b.State())
	}
	b.Failure()
	if b.Allow() || b.State() != "open" {
		t.Fatalf("3 failures should open (state=%s)", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailThreshold: 1, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe should be admitted")
	}
	// Exactly one probe: further Allows are rejected while it's in flight.
	if b.Allow() {
		t.Fatal("half-open admitted a second probe")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}

	// Probe success closes.
	b.Success()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("probe success should close (state=%s)", b.State())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailThreshold: 2, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	b.Failure() // open
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure() // probe failed: re-open immediately, streak irrelevant
	if b.Allow() || b.State() != "open" {
		t.Fatalf("failed probe should re-open (state=%s)", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	// And the clock restarts: still blocked until another full cooldown.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("re-opened breaker allowed before its new cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe not admitted after full cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailThreshold: 3, Cooldown: time.Second, Now: clk.now})
	b.Failure()
	b.Failure()
	b.Success() // streak resets
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("streak should have reset on success; breaker opened early")
	}
}
