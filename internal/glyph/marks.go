package glyph

// Mark identifies a diacritical mark drawn in the two-row bands above or
// below a base glyph, or an overlay struck through the core band. The
// composition system mirrors how Latin Extended code points relate to their
// ASCII skeletons: ą is a + ogonek, ö is o + diaeresis, ł is l + stroke.
type Mark int

// Marks supported by the composer.
const (
	MarkNone Mark = iota
	MarkAcute
	MarkGrave
	MarkCircumflex
	MarkTilde
	MarkDiaeresis
	MarkDotAbove
	MarkRingAbove
	MarkMacron
	MarkBreve
	MarkCaron
	MarkHookAbove
	MarkDoubleAcute
	MarkDotBelow
	MarkCedilla
	MarkOgonek
	MarkCommaBelow
	MarkStroke // horizontal bar through the core band
	MarkSlash  // diagonal overlay through the core band
)

// markRows describes the pixels a mark paints. Above-marks use the two rows
// above the core band; below-marks the two rows beneath it. Overlay marks
// are handled separately in compose.
type markRows struct {
	rows  [2]string // 5 columns each; '#' paints
	below bool
}

var markTable = map[Mark]markRows{
	MarkAcute:       {rows: [2]string{"...#.", "..#.."}},
	MarkGrave:       {rows: [2]string{".#...", "..#.."}},
	MarkCircumflex:  {rows: [2]string{"..#..", ".#.#."}},
	MarkTilde:       {rows: [2]string{".#..#", "#.##."}},
	MarkDiaeresis:   {rows: [2]string{".....", ".#.#."}},
	MarkDotAbove:    {rows: [2]string{".....", "..#.."}},
	MarkRingAbove:   {rows: [2]string{"..#..", "..#.."}},
	MarkMacron:      {rows: [2]string{".....", ".###."}},
	MarkBreve:       {rows: [2]string{"#...#", ".###."}},
	MarkCaron:       {rows: [2]string{".#.#.", "..#.."}},
	MarkHookAbove:   {rows: [2]string{"..##.", "...#."}},
	MarkDoubleAcute: {rows: [2]string{"..#.#", ".#.#."}},
	MarkDotBelow:    {rows: [2]string{"..#..", "....."}, below: true},
	MarkCedilla:     {rows: [2]string{"..#..", ".##.."}, below: true},
	MarkOgonek:      {rows: [2]string{"..#..", "..##."}, below: true},
	MarkCommaBelow:  {rows: [2]string{"..#..", ".#..."}, below: true},
}

// spec describes how to draw one Unicode code point: a base ASCII glyph
// plus optional marks. A code point whose spec has no marks renders
// pixel-identical to its base — these are the "identical" homoglyphs
// (e.g. Cyrillic а vs Latin a) that produce SSIM = 1.00 rows in Table XII.
type spec struct {
	base  rune
	marks []Mark
}

// composed maps non-ASCII code points to their drawing specification.
// The table covers the homoglyph repertoire observed in the paper's corpus:
// Cyrillic/Greek identicals, Latin-1 and Latin Extended A/B diacritics, the
// Vietnamese additions (Latin Extended Additional) and a few fullwidth
// forms. It is deliberately conservative: code points not listed here and
// not in baseFont render as hash glyphs (see render.go) and therefore can
// never collide with a brand's rendering.
var composed = map[rune]spec{
	// Cyrillic identicals and near-identicals.
	'а': {base: 'a'}, // U+0430
	'е': {base: 'e'}, // U+0435
	'о': {base: 'o'}, // U+043E
	'р': {base: 'p'}, // U+0440
	'с': {base: 'c'}, // U+0441
	'ѕ': {base: 's'}, // U+0455
	'і': {base: 'i'}, // U+0456
	'ј': {base: 'j'}, // U+0458
	'х': {base: 'x'}, // U+0445
	'у': {base: 'y'}, // U+0443
	'ԁ': {base: 'd'}, // U+0501
	'ԛ': {base: 'q'}, // U+051B
	'ԝ': {base: 'w'}, // U+051D
	'ӏ': {base: 'l'}, // U+04CF palochka
	'ё': {base: 'e', marks: []Mark{MarkDiaeresis}},
	// Greek identicals.
	'ο': {base: 'o'}, // U+03BF omicron
	'ν': {base: 'v'}, // U+03BD nu
	'ι': {base: 'i', marks: nil},
	// Latin-1 Supplement.
	'à': {base: 'a', marks: []Mark{MarkGrave}},
	'á': {base: 'a', marks: []Mark{MarkAcute}},
	'â': {base: 'a', marks: []Mark{MarkCircumflex}},
	'ã': {base: 'a', marks: []Mark{MarkTilde}},
	'ä': {base: 'a', marks: []Mark{MarkDiaeresis}},
	'å': {base: 'a', marks: []Mark{MarkRingAbove}},
	'ç': {base: 'c', marks: []Mark{MarkCedilla}},
	'è': {base: 'e', marks: []Mark{MarkGrave}},
	'é': {base: 'e', marks: []Mark{MarkAcute}},
	'ê': {base: 'e', marks: []Mark{MarkCircumflex}},
	'ë': {base: 'e', marks: []Mark{MarkDiaeresis}},
	'ì': {base: 'i', marks: []Mark{MarkGrave}},
	'í': {base: 'i', marks: []Mark{MarkAcute}},
	'î': {base: 'i', marks: []Mark{MarkCircumflex}},
	'ï': {base: 'i', marks: []Mark{MarkDiaeresis}},
	'ð': {base: 'd', marks: []Mark{MarkStroke}},
	'ñ': {base: 'n', marks: []Mark{MarkTilde}},
	'ò': {base: 'o', marks: []Mark{MarkGrave}},
	'ó': {base: 'o', marks: []Mark{MarkAcute}},
	'ô': {base: 'o', marks: []Mark{MarkCircumflex}},
	'õ': {base: 'o', marks: []Mark{MarkTilde}},
	'ö': {base: 'o', marks: []Mark{MarkDiaeresis}},
	'ø': {base: 'o', marks: []Mark{MarkSlash}},
	'ù': {base: 'u', marks: []Mark{MarkGrave}},
	'ú': {base: 'u', marks: []Mark{MarkAcute}},
	'û': {base: 'u', marks: []Mark{MarkCircumflex}},
	'ü': {base: 'u', marks: []Mark{MarkDiaeresis}},
	'ý': {base: 'y', marks: []Mark{MarkAcute}},
	'ÿ': {base: 'y', marks: []Mark{MarkDiaeresis}},
	// Latin Extended-A.
	'ā': {base: 'a', marks: []Mark{MarkMacron}},
	'ă': {base: 'a', marks: []Mark{MarkBreve}},
	'ą': {base: 'a', marks: []Mark{MarkOgonek}},
	'ć': {base: 'c', marks: []Mark{MarkAcute}},
	'ĉ': {base: 'c', marks: []Mark{MarkCircumflex}},
	'ċ': {base: 'c', marks: []Mark{MarkDotAbove}},
	'č': {base: 'c', marks: []Mark{MarkCaron}},
	'ď': {base: 'd', marks: []Mark{MarkCaron}},
	'đ': {base: 'd', marks: []Mark{MarkStroke}},
	'ē': {base: 'e', marks: []Mark{MarkMacron}},
	'ĕ': {base: 'e', marks: []Mark{MarkBreve}},
	'ė': {base: 'e', marks: []Mark{MarkDotAbove}},
	'ę': {base: 'e', marks: []Mark{MarkOgonek}},
	'ě': {base: 'e', marks: []Mark{MarkCaron}},
	'ĝ': {base: 'g', marks: []Mark{MarkCircumflex}},
	'ğ': {base: 'g', marks: []Mark{MarkBreve}},
	'ġ': {base: 'g', marks: []Mark{MarkDotAbove}},
	'ģ': {base: 'g', marks: []Mark{MarkCedilla}},
	'ĥ': {base: 'h', marks: []Mark{MarkCircumflex}},
	'ħ': {base: 'h', marks: []Mark{MarkStroke}},
	'ĩ': {base: 'i', marks: []Mark{MarkTilde}},
	'ī': {base: 'i', marks: []Mark{MarkMacron}},
	'ĭ': {base: 'i', marks: []Mark{MarkBreve}},
	'į': {base: 'i', marks: []Mark{MarkOgonek}},
	'ı': {base: 'i'}, // dotless i; marks only add pixels, so model as identity
	'ĵ': {base: 'j', marks: []Mark{MarkCircumflex}},
	'ķ': {base: 'k', marks: []Mark{MarkCedilla}},
	'ĺ': {base: 'l', marks: []Mark{MarkAcute}},
	'ļ': {base: 'l', marks: []Mark{MarkCedilla}},
	'ľ': {base: 'l', marks: []Mark{MarkCaron}},
	'ł': {base: 'l', marks: []Mark{MarkSlash}},
	'ń': {base: 'n', marks: []Mark{MarkAcute}},
	'ņ': {base: 'n', marks: []Mark{MarkCedilla}},
	'ň': {base: 'n', marks: []Mark{MarkCaron}},
	'ō': {base: 'o', marks: []Mark{MarkMacron}},
	'ŏ': {base: 'o', marks: []Mark{MarkBreve}},
	'ő': {base: 'o', marks: []Mark{MarkDoubleAcute}},
	'ŕ': {base: 'r', marks: []Mark{MarkAcute}},
	'ŗ': {base: 'r', marks: []Mark{MarkCedilla}},
	'ř': {base: 'r', marks: []Mark{MarkCaron}},
	'ś': {base: 's', marks: []Mark{MarkAcute}},
	'ŝ': {base: 's', marks: []Mark{MarkCircumflex}},
	'ş': {base: 's', marks: []Mark{MarkCedilla}},
	'š': {base: 's', marks: []Mark{MarkCaron}},
	'ţ': {base: 't', marks: []Mark{MarkCedilla}},
	'ť': {base: 't', marks: []Mark{MarkCaron}},
	'ŧ': {base: 't', marks: []Mark{MarkStroke}},
	'ũ': {base: 'u', marks: []Mark{MarkTilde}},
	'ū': {base: 'u', marks: []Mark{MarkMacron}},
	'ŭ': {base: 'u', marks: []Mark{MarkBreve}},
	'ů': {base: 'u', marks: []Mark{MarkRingAbove}},
	'ű': {base: 'u', marks: []Mark{MarkDoubleAcute}},
	'ų': {base: 'u', marks: []Mark{MarkOgonek}},
	'ŵ': {base: 'w', marks: []Mark{MarkCircumflex}},
	'ŷ': {base: 'y', marks: []Mark{MarkCircumflex}},
	'ź': {base: 'z', marks: []Mark{MarkAcute}},
	'ż': {base: 'z', marks: []Mark{MarkDotAbove}},
	'ž': {base: 'z', marks: []Mark{MarkCaron}},
	// Latin Extended-B and additions.
	'ƀ': {base: 'b', marks: []Mark{MarkStroke}},
	'ǵ': {base: 'g', marks: []Mark{MarkAcute}},
	'ș': {base: 's', marks: []Mark{MarkCommaBelow}},
	'ț': {base: 't', marks: []Mark{MarkCommaBelow}},
	'ɡ': {base: 'g'}, // U+0261 script g
	// Latin Extended Additional (Vietnamese and dot-below series).
	'ạ': {base: 'a', marks: []Mark{MarkDotBelow}},
	'ả': {base: 'a', marks: []Mark{MarkHookAbove}},
	'ấ': {base: 'a', marks: []Mark{MarkCircumflex, MarkAcute}},
	'ầ': {base: 'a', marks: []Mark{MarkCircumflex, MarkGrave}},
	'ḅ': {base: 'b', marks: []Mark{MarkDotBelow}},
	'ḋ': {base: 'd', marks: []Mark{MarkDotAbove}},
	'ḍ': {base: 'd', marks: []Mark{MarkDotBelow}},
	'ẹ': {base: 'e', marks: []Mark{MarkDotBelow}},
	'ẻ': {base: 'e', marks: []Mark{MarkHookAbove}},
	'ḟ': {base: 'f', marks: []Mark{MarkDotAbove}},
	'ḣ': {base: 'h', marks: []Mark{MarkDotAbove}},
	'ḥ': {base: 'h', marks: []Mark{MarkDotBelow}},
	'ị': {base: 'i', marks: []Mark{MarkDotBelow}},
	'ḳ': {base: 'k', marks: []Mark{MarkDotBelow}},
	'ḷ': {base: 'l', marks: []Mark{MarkDotBelow}},
	'ḿ': {base: 'm', marks: []Mark{MarkAcute}},
	'ṃ': {base: 'm', marks: []Mark{MarkDotBelow}},
	'ṅ': {base: 'n', marks: []Mark{MarkDotAbove}},
	'ṇ': {base: 'n', marks: []Mark{MarkDotBelow}},
	'ọ': {base: 'o', marks: []Mark{MarkDotBelow}},
	'ỏ': {base: 'o', marks: []Mark{MarkHookAbove}},
	'ṗ': {base: 'p', marks: []Mark{MarkDotAbove}},
	'ṕ': {base: 'p', marks: []Mark{MarkAcute}},
	'ṙ': {base: 'r', marks: []Mark{MarkDotAbove}},
	'ṛ': {base: 'r', marks: []Mark{MarkDotBelow}},
	'ṡ': {base: 's', marks: []Mark{MarkDotAbove}},
	'ṣ': {base: 's', marks: []Mark{MarkDotBelow}},
	'ṫ': {base: 't', marks: []Mark{MarkDotAbove}},
	'ṭ': {base: 't', marks: []Mark{MarkDotBelow}},
	'ụ': {base: 'u', marks: []Mark{MarkDotBelow}},
	'ủ': {base: 'u', marks: []Mark{MarkHookAbove}},
	'ṿ': {base: 'v', marks: []Mark{MarkDotBelow}},
	'ẁ': {base: 'w', marks: []Mark{MarkGrave}},
	'ẃ': {base: 'w', marks: []Mark{MarkAcute}},
	'ẅ': {base: 'w', marks: []Mark{MarkDiaeresis}},
	'ẇ': {base: 'w', marks: []Mark{MarkDotAbove}},
	'ẉ': {base: 'w', marks: []Mark{MarkDotBelow}},
	'ẋ': {base: 'x', marks: []Mark{MarkDotAbove}},
	'ẏ': {base: 'y', marks: []Mark{MarkDotAbove}},
	'ỳ': {base: 'y', marks: []Mark{MarkGrave}},
	'ỵ': {base: 'y', marks: []Mark{MarkDotBelow}},
	'ỷ': {base: 'y', marks: []Mark{MarkHookAbove}},
	'ẑ': {base: 'z', marks: []Mark{MarkCircumflex}},
	'ẓ': {base: 'z', marks: []Mark{MarkDotBelow}},
	// Unicode small capitals (phonetic extensions / Latin Ext-D): the
	// classic dnstwist-era homoglyph set; modelled as identity renderings
	// of their base letters.
	'ᴀ': {base: 'a'}, 'ʙ': {base: 'b'}, 'ᴄ': {base: 'c'}, 'ᴅ': {base: 'd'},
	'ᴇ': {base: 'e'}, 'ɢ': {base: 'g'}, 'ʜ': {base: 'h'},
	'ɪ': {base: 'i'}, 'ᴊ': {base: 'j'}, 'ᴋ': {base: 'k'}, 'ʟ': {base: 'l'},
	'ᴍ': {base: 'm'}, 'ɴ': {base: 'n'}, 'ᴏ': {base: 'o'}, 'ᴘ': {base: 'p'},
	'ʀ': {base: 'r'}, 'ᴛ': {base: 't'},
	'ᴜ': {base: 'u'}, 'ᴠ': {base: 'v'}, 'ᴡ': {base: 'w'}, 'ʏ': {base: 'y'},
	'ᴢ': {base: 'z'},
	// IPA lookalikes.
	'ɑ': {base: 'a'}, // latin alpha
	'ʋ': {base: 'v'},
	'ɯ': {base: 'w'},
	'ɩ': {base: 'i'},
	// Fullwidth forms render as their ASCII skeletons.
	'ａ': {base: 'a'}, 'ｂ': {base: 'b'}, 'ｃ': {base: 'c'}, 'ｄ': {base: 'd'},
	'ｅ': {base: 'e'}, 'ｆ': {base: 'f'}, 'ｇ': {base: 'g'}, 'ｈ': {base: 'h'},
	'ｉ': {base: 'i'}, 'ｊ': {base: 'j'}, 'ｋ': {base: 'k'}, 'ｌ': {base: 'l'},
	'ｍ': {base: 'm'}, 'ｎ': {base: 'n'}, 'ｏ': {base: 'o'}, 'ｐ': {base: 'p'},
	'ｑ': {base: 'q'}, 'ｒ': {base: 'r'}, 'ｓ': {base: 's'}, 'ｔ': {base: 't'},
	'ｕ': {base: 'u'}, 'ｖ': {base: 'v'}, 'ｗ': {base: 'w'}, 'ｘ': {base: 'x'},
	'ｙ': {base: 'y'}, 'ｚ': {base: 'z'},
	'０': {base: '0'}, '１': {base: '1'}, '２': {base: '2'}, '３': {base: '3'},
	'４': {base: '4'}, '５': {base: '5'}, '６': {base: '6'}, '７': {base: '7'},
	'８': {base: '8'}, '９': {base: '9'},
}

// Skeleton returns the ASCII base character underlying r, and whether r has
// one. ASCII LDH characters are their own skeleton. This is the folding
// primitive package confusables builds on.
func Skeleton(r rune) (rune, bool) {
	if r >= 'A' && r <= 'Z' {
		r += 'a' - 'A'
	}
	if _, ok := baseFont[r]; ok {
		return r, true
	}
	if s, ok := composed[r]; ok {
		return s.base, true
	}
	return 0, false
}

// Composed returns the list of code points in the composition table, in
// unspecified order. It is used by package confusables to enumerate the
// homoglyph candidate space.
func Composed() []rune {
	out := make([]rune, 0, len(composed))
	for r := range composed {
		out = append(out, r)
	}
	return out
}

// MarksOf returns the marks applied to r's base glyph, nil for identity
// renderings, and ok=false for code points outside the composition table.
func MarksOf(r rune) (marks []Mark, ok bool) {
	s, found := composed[r]
	if !found {
		return nil, false
	}
	out := make([]Mark, len(s.marks))
	copy(out, s.marks)
	return out, true
}
