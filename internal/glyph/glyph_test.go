package glyph

import (
	"image"
	"testing"
	"testing/quick"
)

func countInk(img *image.Gray) int {
	n := 0
	for _, p := range img.Pix {
		if p == inkPixel {
			n++
		}
	}
	return n
}

func sameImage(a, b *image.Gray) bool {
	if a.Rect != b.Rect {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func TestBaseFontShapes(t *testing.T) {
	for r, rows := range baseFont {
		ink := 0
		for y, row := range rows {
			if len(row) != baseWidth {
				t.Fatalf("glyph %q row %d has width %d", r, y, len(row))
			}
			for _, c := range row {
				if c != '#' && c != '.' {
					t.Fatalf("glyph %q contains invalid pixel char %q", r, c)
				}
				if c == '#' {
					ink++
				}
			}
		}
		if ink < 2 {
			t.Errorf("glyph %q has almost no ink (%d pixels)", r, ink)
		}
	}
}

func TestBaseGlyphsDistinct(t *testing.T) {
	re := NewRenderer()
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := 0; i < len(letters); i++ {
		for j := i + 1; j < len(letters); j++ {
			a := re.Render(string(letters[i]))
			b := re.Render(string(letters[j]))
			if sameImage(a, b) {
				t.Errorf("glyphs %q and %q are identical", letters[i], letters[j])
			}
		}
	}
}

func TestIdenticalHomoglyphsRenderIdentically(t *testing.T) {
	re := NewRenderer()
	pairs := []struct{ uni, ascii string }{
		{"а", "a"}, {"е", "e"}, {"о", "o"}, {"р", "p"}, {"с", "c"},
		{"ѕ", "s"}, {"х", "x"}, {"у", "y"}, {"ο", "o"}, {"ԛ", "q"},
	}
	for _, p := range pairs {
		if !sameImage(re.Render(p.uni), re.Render(p.ascii)) {
			t.Errorf("%q should render identically to %q", p.uni, p.ascii)
		}
	}
}

func TestSosoAttackRendersIdentically(t *testing.T) {
	// The all-Cyrillic ѕоѕо vs Latin soso — the Firefox bypass of §VI-A.
	re := NewRenderer()
	if !sameImage(re.Render("ѕоѕо"), re.Render("soso")) {
		t.Error("whole-script confusable should be pixel-identical")
	}
}

func TestMarkedGlyphsDifferSlightly(t *testing.T) {
	re := NewRenderer()
	cases := []struct{ marked, base string }{
		{"á", "a"}, {"ạ", "a"}, {"ö", "o"}, {"ç", "c"}, {"š", "s"},
	}
	for _, tc := range cases {
		m := re.Render(tc.marked)
		b := re.Render(tc.base)
		if sameImage(m, b) {
			t.Errorf("%q should differ from %q", tc.marked, tc.base)
		}
		diff := 0
		for i := range m.Pix {
			if m.Pix[i] != b.Pix[i] {
				diff++
			}
		}
		if diff > 8 {
			t.Errorf("%q vs %q differ by %d pixels; marks should be small", tc.marked, tc.base, diff)
		}
	}
}

func TestUppercaseFolds(t *testing.T) {
	re := NewRenderer()
	if !sameImage(re.Render("APPLE"), re.Render("apple")) {
		t.Error("uppercase should fold to lowercase rendering")
	}
}

func TestHashGlyphStable(t *testing.T) {
	a := rasterize('中')
	b := rasterize('中')
	if a != b {
		t.Error("hash glyph not deterministic")
	}
}

func TestHashGlyphsDistinct(t *testing.T) {
	seen := make(map[[CellHeight]uint8]rune)
	for r := rune(0x4E00); r < 0x4E00+500; r++ {
		c := rasterize(r)
		if prev, ok := seen[c]; ok {
			t.Fatalf("hash glyph collision: U+%04X and U+%04X", prev, r)
		}
		seen[c] = r
	}
}

func TestHashGlyphNeverMatchesLatin(t *testing.T) {
	re := NewRenderer()
	for _, latin := range "aeops" {
		for r := rune(0x4E00); r < 0x4E00+200; r++ {
			if sameImage(re.Render(string(latin)), re.Render(string(r))) {
				t.Fatalf("CJK U+%04X renders same as %q", r, latin)
			}
		}
	}
}

func TestRenderDimensions(t *testing.T) {
	re := NewRenderer()
	img := re.Render("apple.com")
	wantW := len([]rune("apple.com")) * CellWidth
	if img.Rect.Dx() != wantW || img.Rect.Dy() != CellHeight {
		t.Errorf("dims = %dx%d, want %dx%d", img.Rect.Dx(), img.Rect.Dy(), wantW, CellHeight)
	}
}

func TestRenderWidthPadsAndTruncates(t *testing.T) {
	re := NewRenderer()
	padded := re.RenderWidth("ab", 10*CellWidth)
	if padded.Rect.Dx() != 10*CellWidth {
		t.Fatalf("padded width = %d", padded.Rect.Dx())
	}
	// Right side must be pure background.
	for y := 0; y < CellHeight; y++ {
		for x := 3 * CellWidth; x < 10*CellWidth; x++ {
			if padded.GrayAt(x, y).Y != backgroundPixel {
				t.Fatalf("padding inked at (%d,%d)", x, y)
			}
		}
	}
	trunc := re.RenderWidth("abcdefgh", 2*CellWidth)
	if trunc.Rect.Dx() != 2*CellWidth {
		t.Fatalf("truncated width = %d", trunc.Rect.Dx())
	}
	if countInk(trunc) == 0 {
		t.Fatal("truncated image lost all ink")
	}
}

func TestRenderEmptyString(t *testing.T) {
	re := NewRenderer()
	img := re.Render("")
	if img.Rect.Dx() != 0 {
		t.Errorf("empty render width = %d", img.Rect.Dx())
	}
}

func TestRenderWidthNegative(t *testing.T) {
	re := NewRenderer()
	if img := re.RenderWidth("a", -5); img.Rect.Dx() != 0 {
		t.Error("negative width should clamp to 0")
	}
}

func TestSkeleton(t *testing.T) {
	cases := []struct {
		r    rune
		want rune
		ok   bool
	}{
		{'a', 'a', true},
		{'A', 'a', true},
		{'а', 'a', true}, // Cyrillic
		{'á', 'a', true},
		{'ạ', 'a', true},
		{'ö', 'o', true},
		{'ѕ', 's', true},
		{'5', '5', true},
		{'-', '-', true},
		{'中', 0, false},
		{'€', 0, false},
	}
	for _, tc := range cases {
		got, ok := Skeleton(tc.r)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Skeleton(%q) = %q,%v want %q,%v", tc.r, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSkeletonIdempotentProperty(t *testing.T) {
	if err := quick.Check(func(v uint16) bool {
		r := rune(v)
		s1, ok := Skeleton(r)
		if !ok {
			return true
		}
		s2, ok2 := Skeleton(s1)
		return ok2 && s2 == s1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposedAllHaveValidBases(t *testing.T) {
	for r, sp := range composed {
		if _, ok := baseFont[sp.base]; !ok {
			t.Errorf("composed %q has base %q with no font glyph", r, sp.base)
		}
	}
}

func TestInkOverlap(t *testing.T) {
	if v := InkOverlap('a', 'а'); v != 1.0 {
		t.Errorf("identical homoglyph overlap = %v, want 1.0", v)
	}
	if v := InkOverlap('a', 'a'); v != 1.0 {
		t.Errorf("self overlap = %v", v)
	}
	av := InkOverlap('a', 'á')
	if av <= 0.7 || av >= 1.0 {
		t.Errorf("a vs á overlap = %v, want high but below 1", av)
	}
	lo := InkOverlap('a', 'z')
	hi := InkOverlap('a', 'á')
	if lo >= hi {
		t.Errorf("a/z overlap (%v) should be below a/á (%v)", lo, hi)
	}
	if v := InkOverlap('o', '中'); v > 0.9 {
		t.Errorf("latin vs CJK hash glyph overlap = %v, too high", v)
	}
}

func TestInkOverlapSymmetric(t *testing.T) {
	runes := []rune{'a', 'e', 'o', 'á', 'ẹ', 'ö', '中', '5'}
	for _, x := range runes {
		for _, y := range runes {
			if InkOverlap(x, y) != InkOverlap(y, x) {
				t.Fatalf("InkOverlap not symmetric for %q,%q", x, y)
			}
		}
	}
}

func TestSupported(t *testing.T) {
	for _, r := range []rune{'a', 'Z', '0', 'а', 'á', 'ạ', 'ｑ'} {
		if !Supported(r) {
			t.Errorf("Supported(%q) = false", r)
		}
	}
	for _, r := range []rune{'中', 'の', '한', '€'} {
		if Supported(r) {
			t.Errorf("Supported(%q) = true", r)
		}
	}
}

func TestArt(t *testing.T) {
	re := NewRenderer()
	art := re.Art("a")
	if len(art) != CellHeight {
		t.Fatalf("art has %d rows", len(art))
	}
	inked := false
	for _, row := range art {
		if len(row) != CellWidth {
			t.Fatalf("art row width %d", len(row))
		}
		for i := 0; i < len(row); i++ {
			if row[i] == '#' {
				inked = true
			}
		}
	}
	if !inked {
		t.Fatal("art of 'a' has no ink")
	}
}

func TestRendererCache(t *testing.T) {
	re := NewRenderer()
	a1 := re.Render("aaaa")
	a2 := re.Render("aaaa")
	if !sameImage(a1, a2) {
		t.Error("cached render differs")
	}
}

func TestMarksOf(t *testing.T) {
	marks, ok := MarksOf('á')
	if !ok || len(marks) != 1 || marks[0] != MarkAcute {
		t.Errorf("MarksOf('á') = %v,%v", marks, ok)
	}
	if marks, ok := MarksOf('а'); !ok || len(marks) != 0 {
		t.Errorf("MarksOf(Cyrillic а) = %v,%v, want empty identity", marks, ok)
	}
	if _, ok := MarksOf('a'); ok {
		t.Error("ASCII 'a' should not be in the composed table")
	}
}

func TestComposedEnumeration(t *testing.T) {
	runes := Composed()
	if len(runes) != len(composed) {
		t.Fatalf("Composed() returned %d runes, table has %d", len(runes), len(composed))
	}
	for _, r := range runes {
		if _, ok := composed[r]; !ok {
			t.Fatalf("Composed() returned %q not in table", r)
		}
	}
}

func BenchmarkRenderDomain(b *testing.B) {
	re := NewRenderer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = re.Render("fаcebook.com")
	}
}

func BenchmarkRasterizeUncached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = rasterize('ạ')
	}
}
