package glyph

// Tests for the shared immutable glyph atlas and the zero-alloc
// RenderWidthInto path. The concurrency test is exercised under `make
// race` in CI: one Renderer shared by many goroutines, mixed designed /
// composed / hash-glyph repertoire.

import (
	"image"
	"sync"
	"testing"
)

func TestSharedRendererConcurrent(t *testing.T) {
	re := NewRenderer()
	domains := []string{
		"facebook.com", "fаcebook.com", "gõogle.com", "中文网址.com",
		"ạppleід.com", "xn--fiqs8s", "ABC-ÐΞ.net", "",
	}
	want := make([]*image.Gray, len(domains))
	for i, d := range domains {
		want[i] = re.Render(d)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var scratch *image.Gray
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(domains)
				got := re.Render(domains[i])
				if !sameImage(got, want[i]) {
					errs <- "concurrent Render diverged for " + domains[i]
					return
				}
				// The Into path with a goroutine-private buffer must be
				// just as stable.
				scratch = re.RenderWidthInto(scratch, domains[i], want[i].Rect.Dx())
				if !sameImage(scratch, want[i]) {
					errs <- "concurrent RenderWidthInto diverged for " + domains[i]
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestZeroValueRendererUsable(t *testing.T) {
	var re Renderer // zero value falls back to the shared atlas
	if !sameImage(re.Render("abc"), NewRenderer().Render("abc")) {
		t.Error("zero-value Renderer renders differently")
	}
}

func TestRenderWidthIntoMatchesRenderWidth(t *testing.T) {
	re := NewRenderer()
	var buf *image.Gray
	cases := []struct {
		s     string
		width int
	}{
		{"apple.com", 9 * CellWidth},
		{"ab", 10 * CellWidth},      // pad
		{"abcdefgh", 2 * CellWidth}, // truncate
		{"中文", 2 * CellWidth},
		{"", 0},
		{"x", -3},                    // negative clamps to 0
		{"apple.com", 9 * CellWidth}, // shrink buffer back up
	}
	for _, tc := range cases {
		want := re.RenderWidth(tc.s, tc.width)
		buf = re.RenderWidthInto(buf, tc.s, tc.width)
		if !sameImage(buf, want) {
			t.Errorf("RenderWidthInto(%q, %d) differs from RenderWidth", tc.s, tc.width)
		}
	}
}

// TestRenderWidthIntoNoStaleInk renders a heavily-inked string, then a
// lightly-inked one into the same buffer: no pixels from the first render
// may survive.
func TestRenderWidthIntoNoStaleInk(t *testing.T) {
	re := NewRenderer()
	buf := re.RenderWidthInto(nil, "wwwwwwww", 8*CellWidth)
	heavy := countInk(buf)
	buf = re.RenderWidthInto(buf, "........", 8*CellWidth)
	want := re.RenderWidth("........", 8*CellWidth)
	if !sameImage(buf, want) {
		t.Fatal("stale ink leaked between RenderWidthInto calls")
	}
	if countInk(buf) >= heavy {
		t.Fatal("sanity: dots should ink fewer pixels than w's")
	}
}

// TestRenderWidthIntoZeroAlloc pins the steady-state allocation contract
// of the corpus-scan render path.
func TestRenderWidthIntoZeroAlloc(t *testing.T) {
	re := NewRenderer()
	width := 12 * CellWidth
	buf := re.RenderWidthInto(nil, "warmup.example", width)
	domains := []string{"facebook.com", "fаcebook.com", "gõogle.com", "中文网址集合拼.com"}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf = re.RenderWidthInto(buf, domains[i%len(domains)], width)
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state RenderWidthInto allocates %v per run, want 0", allocs)
	}
}

func TestAtlasCoversDesignedRepertoire(t *testing.T) {
	m := atlas()
	for r := range baseFont {
		if _, ok := m[r]; !ok {
			t.Errorf("atlas missing base glyph %q", r)
		}
	}
	for r := range composed {
		if _, ok := m[r]; !ok {
			t.Errorf("atlas missing composed glyph %q", r)
		}
	}
	// Atlas cells must equal direct rasterization.
	for _, r := range []rune{'a', 'z', '0', '-', 'á', 'ạ', 'ö', 'ѕ'} {
		if m[r] != rasterize(r) {
			t.Errorf("atlas cell for %q differs from rasterize", r)
		}
	}
}
