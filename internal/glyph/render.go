// Package glyph rasterizes domain-name strings into grayscale bitmaps.
//
// The paper's homograph detector (§VI-B) "rendered the image of every IDN
// and brand domain" before computing pair-wise SSIM. Reproducing that
// requires a renderer; since real font stacks are out of scope, this package
// ships a self-contained pixel typeface with a diacritic composition system
// that preserves the property the detector depends on: a homoglyph renders
// either pixel-identically to its ASCII target (Cyrillic а vs a) or with a
// small mark perturbation (á, ạ, â), while unrelated characters render very
// differently.
//
// Code points outside the known repertoire (e.g. CJK ideographs) render as
// deterministic hash glyphs: a pseudo-random but stable 5x7 pattern derived
// from the code point. Hash glyphs are mutually distinct with high
// probability and never resemble Latin glyphs, which mirrors reality — a
// Han ideograph does not pass for "a" in any font.
package glyph

import (
	"image"
	"math/bits"
	"strings"
	"sync"
)

// Cell geometry: a 5x7 core band with two mark rows above and below, plus
// one column of inter-glyph spacing.
const (
	// CellWidth is the width in pixels of one rendered character cell.
	CellWidth = baseWidth + 1
	// CellHeight is the height in pixels of every rendered image.
	CellHeight = baseHeight + 4
	// coreTop is the first row of the 7-row core band.
	coreTop = 2
)

// Pixel values: ink on white background.
const (
	inkPixel        = 0x00
	backgroundPixel = 0xFF
)

// Renderer rasterizes strings. All Renderers share one immutable glyph
// atlas (the full designed repertoire, precomputed on first use), so a
// Renderer holds no mutable state and is safe for concurrent use by any
// number of goroutines — one Renderer can back a whole worker pool. The
// zero value is ready to use.
type Renderer struct {
	atlas map[rune][CellHeight]uint8
}

// The shared atlas: every designed glyph (base font plus composed
// diacritics) rasterized once, then never written again. Runes outside
// the atlas are hash glyphs, which are pure functions of the code point
// and need no cache at all.
var (
	atlasOnce   sync.Once
	sharedAtlas map[rune][CellHeight]uint8
)

func atlas() map[rune][CellHeight]uint8 {
	atlasOnce.Do(func() {
		m := make(map[rune][CellHeight]uint8, len(baseFont)+len(composed))
		for r := range baseFont {
			m[r] = rasterize(r)
		}
		for r := range composed {
			m[r] = rasterize(r)
		}
		sharedAtlas = m
	})
	return sharedAtlas
}

// NewRenderer returns a Renderer backed by the shared precomputed glyph
// atlas. Construction is O(1) after the first call in the process; the
// returned Renderer is immutable and safe for concurrent use.
func NewRenderer() *Renderer {
	return &Renderer{atlas: atlas()}
}

// cellOf returns the rasterized cell for r as CellHeight rows of column
// bits (bit i set = column i inked; only the low baseWidth bits are used).
func (re *Renderer) cellOf(r rune) [CellHeight]uint8 {
	if r >= 'A' && r <= 'Z' {
		r += 'a' - 'A'
	}
	m := re.atlas
	if m == nil {
		m = atlas()
	}
	if c, ok := m[r]; ok {
		return c
	}
	return hashGlyph(r)
}

// rasterize draws one code point into a cell bitmask.
func rasterize(r rune) [CellHeight]uint8 {
	if r >= 'A' && r <= 'Z' {
		r += 'a' - 'A'
	}
	var cell [CellHeight]uint8
	if rows, ok := baseFont[r]; ok {
		paintCore(&cell, rows)
		return cell
	}
	if sp, ok := composed[r]; ok {
		rows := baseFont[sp.base]
		paintCore(&cell, rows)
		for _, m := range sp.marks {
			paintMark(&cell, m)
		}
		return cell
	}
	return hashGlyph(r)
}

// paintCore draws the 7-row base glyph into the core band.
func paintCore(cell *[CellHeight]uint8, rows [baseHeight]string) {
	for y := 0; y < baseHeight; y++ {
		var bits uint8
		row := rows[y]
		for x := 0; x < baseWidth && x < len(row); x++ {
			if row[x] == '#' {
				bits |= 1 << uint(x)
			}
		}
		cell[coreTop+y] = bits
	}
}

// paintMark draws a diacritic into its band, or an overlay across the core.
func paintMark(cell *[CellHeight]uint8, m Mark) {
	switch m {
	case MarkStroke:
		// Horizontal bar through the vertical middle of the core band.
		cell[coreTop+3] |= 0x1F
		return
	case MarkSlash:
		// Diagonal from bottom-left to top-right of the core band.
		for y := 0; y < baseHeight; y++ {
			x := (baseHeight - 1 - y) * baseWidth / baseHeight
			cell[coreTop+y] |= 1 << uint(x)
		}
		return
	}
	mr, ok := markTable[m]
	if !ok {
		return
	}
	top := 0
	if mr.below {
		top = coreTop + baseHeight
	}
	for y := 0; y < 2; y++ {
		var bits uint8
		row := mr.rows[y]
		for x := 0; x < baseWidth && x < len(row); x++ {
			if row[x] == '#' {
				bits |= 1 << uint(x)
			}
		}
		cell[top+y] |= bits
	}
}

// hashGlyph derives a stable pseudo-glyph for an unknown code point. The
// core band is filled from a splitmix64 hash of the code point, leaving the
// mark bands empty so hash glyphs stay visually "in line".
func hashGlyph(r rune) [CellHeight]uint8 {
	var cell [CellHeight]uint8
	z := uint64(r) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	for y := 0; y < baseHeight; y++ {
		cell[coreTop+y] = uint8(z>>(uint(y)*5)) & 0x1F
	}
	// Guarantee visible ink even for degenerate hash values.
	cell[coreTop] |= 0x04
	cell[coreTop+baseHeight-1] |= 0x0A
	return cell
}

// Render rasterizes s into a grayscale image of height CellHeight and width
// len([]rune(s)) * CellWidth. Ink is black (0), background white (255).
func (re *Renderer) Render(s string) *image.Gray {
	runes := []rune(s)
	return re.RenderWidth(s, len(runes)*CellWidth)
}

// RenderWidth rasterizes s into an image of exactly width pixels, padding
// with background on the right or truncating. Fixed-width rendering is what
// makes pair-wise SSIM between different-length domains well-defined.
func (re *Renderer) RenderWidth(s string, width int) *image.Gray {
	return re.RenderWidthInto(nil, s, width)
}

// RenderWidthInto is RenderWidth with a caller-owned destination buffer:
// when dst is non-nil and its pixel buffer has capacity for width ×
// CellHeight pixels, the image is drawn in place and dst is returned;
// otherwise a fresh image is allocated. A steady-state corpus scan that
// threads the returned image back in performs zero allocations per
// candidate. The destination is fully overwritten (background first), so
// stale pixels never leak between renders.
func (re *Renderer) RenderWidthInto(dst *image.Gray, s string, width int) *image.Gray {
	if width < 0 {
		width = 0
	}
	need := width * CellHeight
	if dst == nil || cap(dst.Pix) < need {
		dst = image.NewGray(image.Rect(0, 0, width, CellHeight))
	} else {
		dst.Pix = dst.Pix[:need]
		dst.Stride = width
		dst.Rect = image.Rect(0, 0, width, CellHeight)
	}
	for i := range dst.Pix {
		dst.Pix[i] = backgroundPixel
	}
	x0 := 0
	for _, r := range s {
		if x0 >= width {
			break
		}
		cell := re.cellOf(r)
		for y := 0; y < CellHeight; y++ {
			bits := cell[y]
			for x := 0; x < baseWidth; x++ {
				if bits&(1<<uint(x)) == 0 {
					continue
				}
				px := x0 + x
				if px >= width {
					continue
				}
				dst.Pix[y*dst.Stride+px] = inkPixel
			}
		}
		x0 += CellWidth
	}
	return dst
}

// PaintCell overwrites character cell `cell` of img — an image previously
// produced by Render/RenderWidth/RenderWidthInto with origin (0,0) — with
// the glyph for r, leaving every other cell untouched. It returns the
// half-open pixel-column range [x0, x1) that may have changed. Because
// each rune inks only its own cell's columns, patching cell i of a
// rendered string yields exactly the image a full render of the
// substituted string would produce — which is what makes the availability
// study's single-substitution sweep cheap: one ~5-column repaint instead
// of a whole-raster re-render per candidate.
func (re *Renderer) PaintCell(img *image.Gray, cell int, r rune) (x0, x1 int) {
	width := img.Rect.Dx()
	x0 = cell * CellWidth
	if cell < 0 || x0 >= width {
		return width, width
	}
	// Ink only ever occupies the low baseWidth bits of a cell; the spacing
	// column is background in every render and stays untouched.
	x1 = x0 + baseWidth
	if x1 > width {
		x1 = width
	}
	c := re.cellOf(r)
	height := img.Rect.Dy()
	if height > CellHeight {
		height = CellHeight
	}
	for y := 0; y < height; y++ {
		row := img.Pix[y*img.Stride:]
		bits := c[y]
		for x := x0; x < x1; x++ {
			if bits&(1<<uint(x-x0)) != 0 {
				row[x] = inkPixel
			} else {
				row[x] = backgroundPixel
			}
		}
	}
	return x0, x1
}

// CellDiff returns the bounding box of pixels that differ between the
// rendered cells of a and b: column offsets [dx0, dx1) within the cell and
// row range [dy0, dy1). Pixel-identical cells (e.g. Cyrillic а vs Latin a)
// return an all-zero empty box. Combined with PaintCell, the box tells a
// caller exactly which pixels a single-character substitution can change —
// often just a two-row mark band — which the SSIM changed-rect kernel
// turns into a proportional cost reduction.
func (re *Renderer) CellDiff(a, b rune) (dx0, dx1, dy0, dy1 int) {
	return DiffBox(re.CellBits(a), re.CellBits(b))
}

// CellBits returns the rasterized cell of r as CellHeight rows of column
// bitmasks (bit i set = column i inked; only the low baseWidth bits are
// used). This is the raw form behind Render: substitution sweeps fetch it
// once per homoglyph and feed it to DiffBox / AppendPatch instead of
// re-resolving the glyph per pixel.
func (re *Renderer) CellBits(r rune) [CellHeight]uint8 {
	return re.cellOf(r)
}

// DiffBox returns the bounding box of pixels that differ between two cell
// bitmasks: column offsets [dx0, dx1) and row range [dy0, dy1), or the
// all-zero empty box when the cells are identical.
func DiffBox(ca, cb [CellHeight]uint8) (dx0, dx1, dy0, dy1 int) {
	dx0, dy0 = baseWidth, CellHeight
	for y := 0; y < CellHeight; y++ {
		d := ca[y] ^ cb[y]
		if d == 0 {
			continue
		}
		if y < dy0 {
			dy0 = y
		}
		dy1 = y + 1
		if lo := bits.TrailingZeros8(d); lo < dx0 {
			dx0 = lo
		}
		if hi := 8 - bits.LeadingZeros8(d); hi > dx1 {
			dx1 = hi
		}
	}
	if dx1 <= dx0 {
		return 0, 0, 0, 0
	}
	return dx0, dx1, dy0, dy1
}

// AppendPatch appends the pixel bytes of cell restricted to the box of
// columns [dx0, dx1) and rows [dy0, dy1) to dst, row-major with stride
// dx1−dx0, and returns the extended slice. The emitted bytes are exactly
// what a full render would place at those cell pixels (inkPixel where the
// bit is set, backgroundPixel elsewhere), so a patch plus its box describes
// a single-character substitution without touching any raster.
func AppendPatch(cell [CellHeight]uint8, dx0, dx1, dy0, dy1 int, dst []byte) []byte {
	for y := dy0; y < dy1; y++ {
		rowBits := cell[y]
		for x := dx0; x < dx1; x++ {
			if rowBits&(1<<uint(x)) != 0 {
				dst = append(dst, inkPixel)
			} else {
				dst = append(dst, backgroundPixel)
			}
		}
	}
	return dst
}

// Supported reports whether r has a designed glyph (base font or composed),
// as opposed to a hash glyph.
func Supported(r rune) bool {
	if r >= 'A' && r <= 'Z' {
		r += 'a' - 'A'
	}
	if _, ok := baseFont[r]; ok {
		return true
	}
	_, ok := composed[r]
	return ok
}

// InkOverlap computes |A∩B| / max(|A|,|B|) of inked pixels between the
// cells of two code points — the pixel-overlap measure the UC-SimList
// authors used to compose their homoglyph list (paper §VI-D).
func InkOverlap(a, b rune) float64 {
	ca, cb := rasterize(a), rasterize(b)
	inter, na, nb := 0, 0, 0
	for y := 0; y < CellHeight; y++ {
		inter += popcount5(ca[y] & cb[y])
		na += popcount5(ca[y])
		nb += popcount5(cb[y])
	}
	maxN := max(na, nb)
	if maxN == 0 {
		return 0
	}
	return float64(inter) / float64(maxN)
}

// popcount5 counts set bits in the low 5 bits.
func popcount5(b uint8) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// Art returns an ASCII-art rendering of s, one string per pixel row, for
// debugging and documentation ('#' ink, '.' background).
func (re *Renderer) Art(s string) []string {
	img := re.Render(s)
	out := make([]string, CellHeight)
	var b strings.Builder
	for y := 0; y < CellHeight; y++ {
		b.Reset()
		for x := 0; x < img.Rect.Dx(); x++ {
			if img.Pix[y*img.Stride+x] == inkPixel {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		out[y] = b.String()
	}
	return out
}
