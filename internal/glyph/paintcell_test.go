package glyph

import (
	"bytes"
	"testing"
)

// TestPaintCellMatchesFullRender pins the cell-patching contract: painting
// cell i of a rendered string with rune r must produce exactly the image a
// full render of the substituted string produces, and the returned column
// range must cover every pixel that changed.
func TestPaintCellMatchesFullRender(t *testing.T) {
	re := NewRenderer()
	cases := []struct {
		label string
		cell  int
		r     rune
	}{
		{"google", 0, 'ģ'},
		{"google", 3, 'ǫ'},
		{"google", 5, 'é'},
		{"facebook", 4, 'ы'},
		{"a", 0, 'а'}, // Cyrillic а
		{"paypal", 2, '中'},
		{"xn--test", 1, 'ñ'},
	}
	for _, tc := range cases {
		runes := []rune(tc.label)
		width := len(runes) * CellWidth
		img := re.RenderWidth(tc.label, width)
		orig := append([]uint8(nil), img.Pix...)

		x0, x1 := re.PaintCell(img, tc.cell, tc.r)

		sub := append([]rune(nil), runes...)
		sub[tc.cell] = tc.r
		want := re.RenderWidth(string(sub), width)
		if !bytes.Equal(img.Pix, want.Pix) {
			t.Fatalf("%s[%d]=%q: patched image differs from full render", tc.label, tc.cell, tc.r)
		}

		// Changed pixels must all lie inside the reported range.
		for y := 0; y < CellHeight; y++ {
			for x := 0; x < width; x++ {
				if img.Pix[y*img.Stride+x] != orig[y*img.Stride+x] && (x < x0 || x >= x1) {
					t.Fatalf("%s[%d]=%q: pixel (%d,%d) changed outside reported range [%d,%d)",
						tc.label, tc.cell, tc.r, x, y, x0, x1)
				}
			}
		}

		// Restoring the original rune must reproduce the original raster.
		re.PaintCell(img, tc.cell, runes[tc.cell])
		if !bytes.Equal(img.Pix, orig) {
			t.Fatalf("%s[%d]: restore did not reproduce the original raster", tc.label, tc.cell)
		}
	}
}

// TestPaintCellOutOfRange pins the guard rails: a cell beyond the image
// width must be a no-op reporting an empty range, and a cell that is only
// partially inside must stay within bounds.
func TestPaintCellOutOfRange(t *testing.T) {
	re := NewRenderer()
	img := re.RenderWidth("abc", 3*CellWidth)
	orig := append([]uint8(nil), img.Pix...)

	x0, x1 := re.PaintCell(img, 7, 'z')
	if x0 != x1 {
		t.Fatalf("out-of-range cell reported non-empty range [%d,%d)", x0, x1)
	}
	if x0, x1 = re.PaintCell(img, -1, 'z'); x0 != x1 {
		t.Fatalf("negative cell reported non-empty range [%d,%d)", x0, x1)
	}
	if !bytes.Equal(img.Pix, orig) {
		t.Fatal("out-of-range PaintCell mutated the image")
	}

	// Truncated render: last cell clipped mid-glyph must match the full
	// render of the substituted string at the same truncated width.
	width := 2*CellWidth + 3
	img2 := re.RenderWidth("abc", width)
	re.PaintCell(img2, 2, 'x')
	want := re.RenderWidth("abx", width)
	if !bytes.Equal(img2.Pix, want.Pix) {
		t.Fatal("truncated-cell patch differs from full render")
	}
}
