#!/bin/sh
# serve_bench.sh — the end-to-end serving benchmark: boots idnserve,
# replays a zipfian label stream with idnload, and prints achieved QPS
# plus latency percentiles. Duration is $1 (default 10s).
set -eu

GO=${GO:-go}
DURATION=${1:-10s}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "serve-bench: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idnload" ./cmd/idnload

"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 >"$TMP/serve.log" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^idnserve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "serve-bench: idnserve died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-bench: idnserve never became ready"; exit 1; }

echo "serve-bench: warmup..."
"$TMP/idnload" -addr "$ADDR" -duration 2s -concurrency 16 >/dev/null 2>&1 || true
echo "serve-bench: measuring ($DURATION)..."
"$TMP/idnload" -addr "$ADDR" -duration "$DURATION" -concurrency 32

kill -TERM "$SRV"
wait "$SRV" || { echo "serve-bench: unclean server exit"; exit 1; }
trap 'rm -rf "$TMP"' EXIT
echo "serve-bench: done"
