#!/bin/sh
# watch_smoke.sh — end-to-end smoke of the streaming watch tier:
# idnzonegen emits a deterministic delta stream, idnwatch processes it
# in -once mode (alerts produced, cursor idempotent, alert stream
# deterministic across fresh runs), then tails the directory as a
# daemon: readiness line, live /metrics, new delta picked up, SIGTERM
# drains cleanly. Run via `make watch-smoke`.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "watch-smoke: building binaries..."
"$GO" build -o "$TMP/idnzonegen" ./cmd/idnzonegen
"$GO" build -o "$TMP/idnwatch" ./cmd/idnwatch

echo "watch-smoke: generating 3 delta days..."
"$TMP/idnzonegen" -out "$TMP/deltas" -deltas 3 -deltas-only -seed 7 -scale 400 -delta-attack-share 0.3 >/dev/null

# One-shot run: must produce alerts and drain cleanly.
"$TMP/idnwatch" -deltas "$TMP/deltas" -alerts "$TMP/a.log" -brands 200 -once >"$TMP/once1.out"
grep -q "drained cleanly" "$TMP/once1.out" || { echo "watch-smoke: no clean-drain marker:"; cat "$TMP/once1.out"; exit 1; }
grep -q "processed 3 deltas" "$TMP/once1.out" || { echo "watch-smoke: did not process 3 deltas:"; cat "$TMP/once1.out"; exit 1; }
ALERTS=$("$TMP/idnwatch" -alerts "$TMP/a.log" -replay 2>/dev/null | wc -l)
[ "$ALERTS" -gt 0 ] || { echo "watch-smoke: no alerts in log"; exit 1; }
echo "watch-smoke: one-shot run produced $ALERTS alerts"

# Idempotency: re-running over the same cursor must process nothing.
"$TMP/idnwatch" -deltas "$TMP/deltas" -alerts "$TMP/a.log" -brands 200 -once >"$TMP/once2.out"
grep -q "processed 0 deltas" "$TMP/once2.out" || { echo "watch-smoke: cursor not idempotent:"; cat "$TMP/once2.out"; exit 1; }

# Determinism: a fresh log over the same deltas replays identically.
"$TMP/idnwatch" -deltas "$TMP/deltas" -alerts "$TMP/b.log" -brands 200 -once >/dev/null
"$TMP/idnwatch" -alerts "$TMP/a.log" -replay 2>/dev/null >"$TMP/a.json"
"$TMP/idnwatch" -alerts "$TMP/b.log" -replay 2>/dev/null >"$TMP/b.json"
cmp -s "$TMP/a.json" "$TMP/b.json" || { echo "watch-smoke: alert streams differ between runs"; exit 1; }
echo "watch-smoke: idempotent cursor + deterministic alert stream verified"

# Daemon mode: tail the directory, verify /metrics, drop in a new delta
# day, wait for the cursor to advance, then drain on SIGTERM.
"$TMP/idnwatch" -deltas "$TMP/deltas" -alerts "$TMP/a.log" -brands 200 \
    -interval 200ms -listen 127.0.0.1:0 >"$TMP/daemon.log" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^idnwatch: listening on \([^ ]*\).*/\1/p' "$TMP/daemon.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "watch-smoke: idnwatch died:"; cat "$TMP/daemon.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "watch-smoke: idnwatch never became ready:"; cat "$TMP/daemon.log"; exit 1; }
echo "watch-smoke: daemon up at $ADDR"

curl -fsS "http://$ADDR/healthz" >/dev/null || { echo "watch-smoke: /healthz failed"; exit 1; }
curl -fsS "http://$ADDR/metrics" | grep -q '"cursor"' || { echo "watch-smoke: /metrics missing cursor"; exit 1; }

# Day 4 appears (same seed regenerates days 1-3 byte-identically).
"$TMP/idnzonegen" -out "$TMP/deltas" -deltas 4 -deltas-only -seed 7 -scale 400 -delta-attack-share 0.3 >/dev/null
ADV=""
for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/metrics" | grep -q '"serial":2017080104'; then ADV=1; break; fi
    sleep 0.2
done
[ -n "$ADV" ] || { echo "watch-smoke: daemon never advanced to day 4:"; curl -fsS "http://$ADDR/metrics" || true; exit 1; }
echo "watch-smoke: daemon picked up day 4"

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap 'rm -rf "$TMP"' EXIT
[ "$STATUS" -eq 0 ] || { echo "watch-smoke: idnwatch exited $STATUS on SIGTERM:"; cat "$TMP/daemon.log"; exit 1; }
grep -q "drained cleanly" "$TMP/daemon.log" || { echo "watch-smoke: no clean-drain marker:"; cat "$TMP/daemon.log"; exit 1; }
echo "watch-smoke: ok (alerts, idempotency, determinism, daemon drain verified)"
