#!/bin/sh
# store_smoke.sh — durable-store smoke for the cluster tier: boots
# idngateway plus three idnserve workers with per-node warm logs
# (-store), warms the fleet with a zipfian load, SIGKILLs one worker
# mid-stream, restarts it on the same store directory while the load is
# still running, and asserts the restart story end to end:
#
#   - zero non-429 client-visible errors across the kill + rejoin
#     (error-rate: 0.00% from idnload's run report),
#   - the restarted worker warm-boots a non-empty verdict set from the
#     log that survived the SIGKILL,
#   - the cold-miss budget holds, asserted from /metrics (idnload's
#     post-run store report aggregates the workers' store blocks via
#     the gateway): repair misses — probes that found no warm copy on
#     any candidate and fell through to a recompute — stay within
#     MISS_BUDGET_PCT of total requests (DESIGN.md §16 derives the
#     bound from the replication interval and sync cadence),
#   - all three nodes report durable stores after the roll,
#   - clean SIGTERM drains close every log.
#
# Run via `make store-smoke`.
set -eu

GO=${GO:-go}
MISS_BUDGET_PCT=${MISS_BUDGET_PCT:-5.0}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "store-smoke: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idngateway" ./cmd/idngateway
"$GO" build -o "$TMP/idnload" ./cmd/idnload

# wait_line FILE PATTERN PID NAME — poll for a readiness line.
wait_line() {
    _file=$1; _pat=$2; _pid=$3; _name=$4
    for i in $(seq 1 100); do
        if grep -q "$_pat" "$_file" 2>/dev/null; then return 0; fi
        kill -0 "$_pid" 2>/dev/null || { echo "store-smoke: $_name died:"; cat "$_file"; exit 1; }
        sleep 0.1
    done
    echo "store-smoke: $_name never became ready:"; cat "$_file"; exit 1
}

# start_worker ID LOGFILE — boot one durable worker on its store dir.
start_worker() {
    _id=$1; _log=$2
    "$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -node "$_id" -join "$GWADDR" \
        -store "$TMP/store-$_id" -sync-interval 500ms >"$_log" 2>&1 &
    _pid=$!
    PIDS="$PIDS $_pid"
    wait_line "$_log" "^idnserve: listening on" "$_pid" "$_id"
    eval "${_id}_PID=$_pid"
}

"$TMP/idngateway" -listen 127.0.0.1:0 -heartbeat 200ms -min-ready 3 >"$TMP/gateway.log" 2>&1 &
GW=$!
PIDS="$GW"
wait_line "$TMP/gateway.log" "^idngateway: listening on" "$GW" "idngateway"
GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gateway.log")
echo "store-smoke: gateway up at $GWADDR"

start_worker w1 "$TMP/w1.log"
start_worker w2 "$TMP/w2.log"
start_worker w3 "$TMP/w3.log"
wait_line "$TMP/gateway.log" "^idngateway: serving 3 workers" "$GW" "idngateway quorum"
grep -q "store $TMP/store-w1: recovered 0 verdicts" "$TMP/w1.log" || {
    echo "store-smoke: w1 cold boot did not report an empty store:"; cat "$TMP/w1.log"; exit 1; }
echo "store-smoke: 3 durable workers joined (cold boot)"

# Warm the fleet: zipfian load through the gateway fills every worker's
# cache partition and, via write-through, its warm log.
"$TMP/idnload" -addr "$GWADDR" -duration 3s -concurrency 24 >"$TMP/warm.log" 2>&1 || {
    echo "store-smoke: warm phase failed:"; cat "$TMP/warm.log"; exit 1; }
grep -q "error-rate: 0.00%" "$TMP/warm.log" || {
    echo "store-smoke: errors during warm phase:"; cat "$TMP/warm.log"; exit 1; }
echo "store-smoke: fleet warmed"

# Live load with a mid-stream SIGKILL and a warm restart on the same
# store directory — the drill the subsystem exists for.
"$TMP/idnload" -addr "$GWADDR" -duration 8s -concurrency 24 >"$TMP/load.log" 2>&1 &
LOAD=$!
sleep 2
kill -KILL "$w1_PID"
PIDS="$GW $w2_PID $w3_PID"
echo "store-smoke: killed worker w1 (SIGKILL) under live load"
sleep 1
start_worker w1 "$TMP/w1b.log"
echo "store-smoke: restarted w1 on its old store directory"
grep -q "store $TMP/store-w1: recovered [1-9]" "$TMP/w1b.log" || {
    echo "store-smoke: w1 rebooted cold — the warm log did not survive the SIGKILL:"
    cat "$TMP/w1b.log"; exit 1; }

STATUS=0; wait "$LOAD" || STATUS=$?
cat "$TMP/load.log"
[ "$STATUS" -eq 0 ] || { echo "store-smoke: load exited $STATUS"; exit 1; }
grep -q "error-rate: 0.00%" "$TMP/load.log" || {
    echo "store-smoke: non-429 client errors during kill + warm restart"; exit 1; }

# Budget assertions from /metrics (idnload's post-run store report is a
# scrape of every worker's store block through the gateway).
grep -q "^store: durable-nodes=3 " "$TMP/load.log" || {
    echo "store-smoke: gateway does not see 3 durable nodes after the roll"; exit 1; }
WARM_BOOT=$(sed -n 's/^store: .*warm-boot=\([0-9]*\).*/\1/p' "$TMP/load.log" | tail -1)
[ -n "$WARM_BOOT" ] && [ "$WARM_BOOT" -gt 0 ] || {
    echo "store-smoke: no warm-boot entries registered cluster-wide"; exit 1; }
MISSES=$(sed -n 's/^store: .*repair-misses=\([0-9]*\).*/\1/p' "$TMP/load.log" | tail -1)
REQUESTS=$(sed -n 's/^idnload: \([0-9]*\) requests.*/\1/p' "$TMP/load.log" | tail -1)
[ -n "$MISSES" ] && [ -n "$REQUESTS" ] || {
    echo "store-smoke: could not extract cold-miss numbers from the store report"; exit 1; }
awk "BEGIN { exit !($MISSES <= $REQUESTS * $MISS_BUDGET_PCT / 100) }" || {
    echo "store-smoke: FAIL — $MISSES cold misses over $REQUESTS requests exceeds the $MISS_BUDGET_PCT% budget"
    exit 1; }
echo "store-smoke: cold-miss budget held ($MISSES cold misses / $REQUESTS requests, budget $MISS_BUDGET_PCT%)"

# Graceful teardown: every worker (including the resurrected one) and
# the gateway must drain clean, closing their logs.
for name in w1 w2 w3; do
    eval "_pid=\$${name}_PID"
    kill -TERM "$_pid"
    STATUS=0; wait "$_pid" || STATUS=$?
    _log="$TMP/$name.log"
    [ "$name" = w1 ] && _log="$TMP/w1b.log"
    [ "$STATUS" -eq 0 ] || { echo "store-smoke: $name exited $STATUS:"; cat "$_log"; exit 1; }
    grep -q "drained cleanly" "$_log" || { echo "store-smoke: $name no clean-drain marker:"; cat "$_log"; exit 1; }
done
kill -TERM "$GW"
STATUS=0; wait "$GW" || STATUS=$?
PIDS=""
[ "$STATUS" -eq 0 ] || { echo "store-smoke: gateway exited $STATUS:"; cat "$TMP/gateway.log"; exit 1; }
grep -q "drained cleanly" "$TMP/gateway.log" || { echo "store-smoke: gateway no clean-drain marker:"; cat "$TMP/gateway.log"; exit 1; }

echo "store-smoke: ok (SIGKILL + warm restart under load, cold-miss budget, clean drains)"
