#!/bin/sh
# index_smoke.sh — end-to-end smoke of the candidate-index pipeline:
# builds an index with `idnindex build`, proves it with `idnindex verify`
# (deterministic rebuild + sampled sweep equivalence), boots idnserve
# with -index, fires the smoke request set via `idnload -smoke`, asserts
# the /metrics index counters moved, and checks the clean SIGTERM drain.
# Run via `make index-smoke`.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "index-smoke: building binaries..."
"$GO" build -o "$TMP/idnindex" ./cmd/idnindex
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idnload" ./cmd/idnload

echo "index-smoke: building and verifying index..."
"$TMP/idnindex" build -top 500 -out "$TMP/brands.cidx"
"$TMP/idnindex" verify -sample 100 "$TMP/brands.cidx"
"$TMP/idnindex" inspect "$TMP/brands.cidx" >/dev/null

"$TMP/idnserve" -listen 127.0.0.1:0 -index "$TMP/brands.cidx" >"$TMP/serve.log" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^idnserve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "index-smoke: idnserve died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "index-smoke: idnserve never became ready:"; cat "$TMP/serve.log"; exit 1
fi
echo "index-smoke: idnserve up at $ADDR (indexed)"

"$TMP/idnload" -addr "$ADDR" -smoke

# The smoke set includes non-ASCII homographs; the index must have been
# consulted and hit at least once.
METRICS=$(curl -sf "http://$ADDR/metrics" 2>/dev/null) || METRICS=$(wget -qO- "http://$ADDR/metrics")
case "$METRICS" in
  *'"loaded":true'*) ;;
  *) echo "index-smoke: /metrics does not report a loaded index: $METRICS"; exit 1 ;;
esac
case "$METRICS" in
  *'"lookups":0'*) echo "index-smoke: index was never consulted: $METRICS"; exit 1 ;;
esac
echo "index-smoke: index consulted (metrics ok)"

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap 'rm -rf "$TMP"' EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "index-smoke: idnserve exited $STATUS on SIGTERM:"; cat "$TMP/serve.log"; exit 1
fi
if ! grep -q "drained cleanly" "$TMP/serve.log"; then
    echo "index-smoke: no clean-drain marker:"; cat "$TMP/serve.log"; exit 1
fi
echo "index-smoke: ok (build, verify, indexed serve, clean drain)"
