#!/bin/sh
# stat_smoke.sh — end-to-end smoke of the statistical classifier
# pipeline: idnzonegen emits the labeled CSV, idnstat trains a model
# from it and the held-out eval must clear the recall/pass-rate gates,
# idnserve boots with -stat, a labeled attack domain must come back
# with an ensemble verdict (statistical detector + suspicion level),
# /metrics must expose the prefilter split, and a short idnload -mix
# run must report the shed-vs-cache-hit breakdown. Clean SIGTERM drain.
# Run via `make stat-smoke`.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "stat-smoke: building binaries..."
"$GO" build -o "$TMP/idnzonegen" ./cmd/idnzonegen
"$GO" build -o "$TMP/idnstat" ./cmd/idnstat
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idnload" ./cmd/idnload

echo "stat-smoke: generating labeled corpus..."
"$TMP/idnzonegen" -labels-only -labels "$TMP/labels.csv" -seed 2018 -scale 100 >/dev/null
[ -s "$TMP/labels.csv" ] || { echo "stat-smoke: empty labels CSV"; exit 1; }

echo "stat-smoke: training and gating the held-out eval..."
"$TMP/idnstat" train -labels "$TMP/labels.csv" -seed 2018 -out "$TMP/model.idnstat" >/dev/null
"$TMP/idnstat" eval -model "$TMP/model.idnstat" -labels "$TMP/labels.csv" \
    -min-recall 0.95 -max-pass 0.25 >/dev/null
"$TMP/idnstat" inspect -model "$TMP/model.idnstat" >/dev/null
echo "stat-smoke: eval gates hold (recall >= 0.95, pass rate <= 0.25)"

"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -stat "$TMP/model.idnstat" >"$TMP/serve.log" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^idnserve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "stat-smoke: idnserve died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "stat-smoke: idnserve never became ready:"; cat "$TMP/serve.log"; exit 1
fi
grep -q "stat model" "$TMP/serve.log" || { echo "stat-smoke: no stat-model boot line:"; cat "$TMP/serve.log"; exit 1; }
echo "stat-smoke: idnserve up at $ADDR (stat model loaded)"

post() {
    curl -sf -X POST -H 'Content-Type: application/json' -d "$1" "http://$ADDR/v1/detect" 2>/dev/null \
        || wget -qO- --post-data="$1" --header='Content-Type: application/json' "http://$ADDR/v1/detect"
}

# A homograph attack label must come back as a full ensemble verdict:
# flagged, with the statistical detector's contribution and a suspicion
# level alongside the structural match.
RESP=$(post '{"domain":"xn--pple-43d.com"}')
case "$RESP" in
  *'"flagged":true'*) ;;
  *) echo "stat-smoke: attack domain not flagged: $RESP"; exit 1 ;;
esac
case "$RESP" in
  *'"suspicion":"high"'*) ;;
  *) echo "stat-smoke: no high-suspicion ensemble verdict: $RESP"; exit 1 ;;
esac
case "$RESP" in
  *'"confidence"'*) ;;
  *) echo "stat-smoke: no ensemble confidence block: $RESP"; exit 1 ;;
esac
echo "stat-smoke: attack domain flagged with ensemble verdict"

# A plain ASCII benign domain still answers, unflagged, with the
# ensemble fields present (ASCII labels skip stat scoring but carry the
# ensemble annotation when a model is loaded).
RESP=$(post '{"domain":"example.com"}')
case "$RESP" in
  *'"flagged":false'*) ;;
  *) echo "stat-smoke: benign domain flagged: $RESP"; exit 1 ;;
esac
case "$RESP" in
  *'"suspicion"'*) ;;
  *) echo "stat-smoke: benign verdict missing suspicion level: $RESP"; exit 1 ;;
esac

# Short mixed-population load: the -mix stream must run clean and the
# post-run report must print the shed-vs-cache-hit split.
"$TMP/idnload" -addr "$ADDR" -mix 0.3 -duration 2s -concurrency 8 >"$TMP/load.log" 2>&1 \
    || { echo "stat-smoke: idnload -mix failed:"; cat "$TMP/load.log"; exit 1; }
grep -q "prefilter-shed-rate:" "$TMP/load.log" || { echo "stat-smoke: no prefilter-shed-rate line:"; cat "$TMP/load.log"; exit 1; }
grep -q "cache-hit-rate:" "$TMP/load.log" || { echo "stat-smoke: no cache-hit-rate line:"; cat "$TMP/load.log"; exit 1; }
echo "stat-smoke: idnload -mix ok ($(grep 'prefilter-shed-rate:' "$TMP/load.log"))"

# /metrics must expose the detector split with the model marked loaded.
METRICS=$(curl -sf "http://$ADDR/metrics" 2>/dev/null) || METRICS=$(wget -qO- "http://$ADDR/metrics")
case "$METRICS" in
  *'"stat_loaded":true'*) ;;
  *) echo "stat-smoke: /metrics does not report a loaded stat model: $METRICS"; exit 1 ;;
esac
case "$METRICS" in
  *'"rescore_early_exit"'*) ;;
  *) echo "stat-smoke: /metrics missing rescore_early_exit: $METRICS"; exit 1 ;;
esac
case "$METRICS" in
  *'"prefilter_shed":0,'*) echo "stat-smoke: prefilter never shed under -mix load: $METRICS"; exit 1 ;;
esac
echo "stat-smoke: detector metrics ok"

kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap 'rm -rf "$TMP"' EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "stat-smoke: idnserve exited $STATUS on SIGTERM:"; cat "$TMP/serve.log"; exit 1
fi
if ! grep -q "drained cleanly" "$TMP/serve.log"; then
    echo "stat-smoke: no clean-drain marker:"; cat "$TMP/serve.log"; exit 1
fi
echo "stat-smoke: ok (train, eval gates, ensemble serve, mix load, clean drain)"
