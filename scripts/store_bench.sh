#!/bin/sh
# store_bench.sh — the durable-store benchmark behind BENCH_store.json.
# Three measurements:
#
#   1. Log-path microbenchmarks: append/group-commit throughput (MB/s)
#      and anti-entropy suffix streaming (records/s) from the
#      internal/vstore benchmarks.
#
#   2. Warm-boot budget: BenchmarkVstoreRecovery at RECORDS verdicts
#      (default 1M — the headline from the issue) measures full
#      reopen/replay throughput. Hard gate: >= 100k entries/s, i.e. a
#      1M-verdict partition boots warm in <= 10s.
#
#   3. Replication overhead: the cluster-bench topology (gateway +
#      3 rate-capped workers) run memory-only vs -store with live
#      replication and anti-entropy, comparing sustained 2xx QPS. The
#      phases run in ABBA order (plain, store, store, plain) and each
#      side is averaged: shared-runner throughput decays monotonically
#      across back-to-back runs, and the mirrored ordering cancels that
#      trend out of the comparison. Hard gate: the durable tier costs
#      <= 10% of cluster throughput.
#
# Usage: sh scripts/store_bench.sh [DURATION] [RATE]
set -eu

GO=${GO:-go}
DURATION=${1:-8s}
RATE=${2:-500}
RECORDS=${RECORDS:-1000000}
STORE_BENCHTIME=${STORE_BENCHTIME:-1s}
OUT=${OUT:-BENCH_store.json}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

# metric FILE BENCH UNIT — pull a benchmark line's value for UNIT.
metric() {
    awk -v b="$2" -v u="$3" '$1 ~ "^"b {for (i = 2; i <= NF; i++) if ($i == u) print $(i-1)}' "$1" | tail -1
}

# --- 1. Log-path microbenchmarks --------------------------------------
echo "store-bench: append + since microbenchmarks (benchtime=$STORE_BENCHTIME)..."
"$GO" test -run='^$' -bench '^(BenchmarkVstoreAppend|BenchmarkVstoreSince)$' \
    -benchmem -benchtime="$STORE_BENCHTIME" ./internal/vstore/ >"$TMP/micro.txt"
cat "$TMP/micro.txt"

# --- 2. Warm-boot budget at RECORDS verdicts --------------------------
echo "store-bench: recovery benchmark at $RECORDS records (1 iteration)..."
VSTORE_BENCH_RECORDS="$RECORDS" "$GO" test -run='^$' -bench '^BenchmarkVstoreRecovery$' \
    -benchmem -benchtime=1x -timeout 10m ./internal/vstore/ >"$TMP/recovery.txt"
cat "$TMP/recovery.txt"

APPEND_MBS=$(metric "$TMP/micro.txt" BenchmarkVstoreAppend MB/s)
SINCE_RPS=$(metric "$TMP/micro.txt" BenchmarkVstoreSince records/s)
REC_MBS=$(metric "$TMP/recovery.txt" BenchmarkVstoreRecovery MB/s)
REC_EPS=$(metric "$TMP/recovery.txt" BenchmarkVstoreRecovery entries/s)
[ -n "$APPEND_MBS" ] && [ -n "$SINCE_RPS" ] && [ -n "$REC_MBS" ] && [ -n "$REC_EPS" ] || {
    echo "store-bench: missing metrics in benchmark output"; exit 1; }
WARM_BOOT_S=$(awk "BEGIN { printf \"%.2f\", $RECORDS / $REC_EPS }")
echo "store-bench: recovery $REC_MBS MB/s, $REC_EPS entries/s ($RECORDS records warm-boot in ${WARM_BOOT_S}s)"

cat "$TMP/micro.txt" "$TMP/recovery.txt" | "$GO" run ./cmd/benchjson -out "$TMP/vstore.json"

# --- 3. Replication overhead on the cluster topology ------------------
echo "store-bench: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idngateway" ./cmd/idngateway
"$GO" build -o "$TMP/idnload" ./cmd/idnload

wait_line() {
    _file=$1; _pat=$2; _pid=$3; _name=$4
    for i in $(seq 1 100); do
        if grep -q "$_pat" "$_file" 2>/dev/null; then return 0; fi
        kill -0 "$_pid" 2>/dev/null || { echo "store-bench: $_name died:"; cat "$_file"; exit 1; }
        sleep 0.1
    done
    echo "store-bench: $_name never became ready:"; cat "$_file"; exit 1
}

# ok_qps LOGFILE — extract the sustained 2xx rate from idnload output.
ok_qps() {
    sed -n 's/^ok: \([0-9][0-9]*\) req\/s (2xx)$/\1/p' "$1" | tail -1
}

# run_phase NAME WORKER_EXTRA — gateway + 3 capped workers, zipfian load.
run_phase() {
    _phase=$1; shift
    "$TMP/idngateway" -listen 127.0.0.1:0 -min-ready 3 >"$TMP/gw_$_phase.log" 2>&1 &
    GW=$!
    PIDS="$GW"
    wait_line "$TMP/gw_$_phase.log" "^idngateway: listening on" "$GW" "idngateway"
    GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gw_$_phase.log")
    for i in 1 2 3; do
        # shellcheck disable=SC2086
        "$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -rate "$RATE" -node "w$i" -join "$GWADDR" \
            $(eval echo "$@") >"$TMP/${_phase}_w$i.log" 2>&1 &
        PIDS="$PIDS $!"
    done
    wait_line "$TMP/gw_$_phase.log" "^idngateway: serving 3 workers" "$GW" "idngateway quorum"

    "$TMP/idnload" -addr "$GWADDR" -duration 2s -concurrency 32 >/dev/null 2>&1 || true
    "$TMP/idnload" -addr "$GWADDR" -duration "$DURATION" -concurrency 64 >"$TMP/load_$_phase.log" 2>&1 || {
        echo "store-bench: $_phase load failed:"; cat "$TMP/load_$_phase.log"; exit 1; }
    cat "$TMP/load_$_phase.log"

    for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    PIDS=""
}

STORE_ARGS="-store $TMP/store-w\$i -sync-interval 2s"
echo "store-bench: ABBA comparison — memory-only vs durable (rate=$RATE/s each)..."
run_phase plain1 ""
run_phase store1 "$STORE_ARGS"
rm -rf "$TMP"/store-w?
run_phase store2 "$STORE_ARGS"
run_phase plain2 ""
for ph in plain1 store1 store2 plain2; do
    _q=$(ok_qps "$TMP/load_$ph.log")
    [ -n "$_q" ] || { echo "store-bench: no ok-QPS line in $ph output"; exit 1; }
    eval "${ph}_QPS=$_q"
    echo "store-bench: $ph sustained $_q ok/s"
done
for ph in store1 store2; do
    grep -q "^store: durable-nodes=3 " "$TMP/load_$ph.log" || {
        echo "store-bench: $ph ran without stores"; exit 1; }
done
PLAIN_QPS=$(awk "BEGIN { printf \"%.0f\", ($plain1_QPS + $plain2_QPS) / 2 }")
STORE_QPS=$(awk "BEGIN { printf \"%.0f\", ($store1_QPS + $store2_QPS) / 2 }")

# --- Report -----------------------------------------------------------
OVERHEAD=$(awk "BEGIN { printf \"%.2f\", 100 * (1 - $STORE_QPS / $PLAIN_QPS) }")
VSTORE_JSON=$(cat "$TMP/vstore.json")
cat >"$OUT" <<EOF
{
  "benchmark": "durable-verdict-store",
  "methodology": "vstore microbenchmarks measure the warm-log encode/frame/replay paths with NoFsync (the disk is not under test); the recovery benchmark replays a $RECORDS-record store per iteration. Replication overhead compares sustained 2xx QPS of the cluster-bench topology (gateway + 3 workers, per-node -rate cap, Retry-After honored) memory-only vs -store with live owner->replica replication and periodic anti-entropy.",
  "config": {
    "records": $RECORDS,
    "ratePerNode": $RATE,
    "duration": "$DURATION",
    "nodes": 3
  },
  "recovery": { "mbPerSec": $REC_MBS, "entriesPerSec": $REC_EPS, "warmBootSeconds": $WARM_BOOT_S },
  "append": { "mbPerSec": $APPEND_MBS },
  "since": { "recordsPerSec": $SINCE_RPS },
  "replication": { "memoryOnlyQPS": $PLAIN_QPS, "durableQPS": $STORE_QPS, "overheadPct": $OVERHEAD },
  "vstore": $VSTORE_JSON
}
EOF
echo "store-bench: recovery=${REC_MBS}MB/s warm-boot=${WARM_BOOT_S}s@${RECORDS}, plain=$PLAIN_QPS ok/s, durable=$STORE_QPS ok/s, overhead=${OVERHEAD}% -> $OUT"

# Acceptance gates: 1M-verdict warm boot within 10s (>= 100k entries/s)
# and the durable tier costing <= 10% cluster throughput.
awk "BEGIN { exit !($REC_EPS >= 100000) }" || {
    echo "store-bench: FAIL — recovery $REC_EPS entries/s < 100k (warm boot over budget)"; exit 1; }
awk "BEGIN { exit !($OVERHEAD <= 10.0) }" || {
    echo "store-bench: FAIL — replication overhead ${OVERHEAD}% > 10%"; exit 1; }
echo "store-bench: ok (warm-boot and replication-overhead gates verified)"
