#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the online detection service:
# boots idnserve on an ephemeral port, fires the mixed
# single/batch/bad-input request set via `idnload -smoke`, then sends
# SIGTERM and asserts a clean drain (exit 0 and the "drained cleanly"
# line). Run via `make serve-smoke`.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "serve-smoke: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idnload" ./cmd/idnload

"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 >"$TMP/serve.log" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -rf "$TMP"' EXIT

# Wait for the readiness line and extract the bound address.
ADDR=""
for i in $(seq 1 50); do
    ADDR=$(sed -n 's/^idnserve: listening on \([^ ]*\).*/\1/p' "$TMP/serve.log")
    [ -n "$ADDR" ] && break
    kill -0 "$SRV" 2>/dev/null || { echo "serve-smoke: idnserve died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: idnserve never became ready:"; cat "$TMP/serve.log"; exit 1
fi
echo "serve-smoke: idnserve up at $ADDR"

"$TMP/idnload" -addr "$ADDR" -smoke

# Graceful drain: SIGTERM must produce a clean exit and the drain line.
kill -TERM "$SRV"
STATUS=0
wait "$SRV" || STATUS=$?
trap 'rm -rf "$TMP"' EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "serve-smoke: idnserve exited $STATUS on SIGTERM:"; cat "$TMP/serve.log"; exit 1
fi
if ! grep -q "drained cleanly" "$TMP/serve.log"; then
    echo "serve-smoke: no clean-drain marker:"; cat "$TMP/serve.log"; exit 1
fi
echo "serve-smoke: ok (clean drain verified)"
