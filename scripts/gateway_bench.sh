#!/bin/sh
# gateway_bench.sh — the request-coalescing + zero-alloc wire-path
# benchmark behind BENCH_gateway.json. Two measurements:
#
#   1. Codec microbenchmarks: the internal/api append encoders and the
#      pooled streaming decoder vs the recorded encoding/json baseline
#      (BENCH_baseline_gateway.txt). Hard gate: 0 allocs/op on every
#      encoder — an allocation regression on the wire hot path fails
#      the build even in noisy CI timing.
#
#   2. Proxied-singles throughput: idngateway + 2 rate-capped idnserve
#      workers under a singles-only idnload, once with coalescing off
#      and once with -coalesce 500us. The rate cap models fixed
#      per-node capacity (same single-machine-honesty methodology as
#      cluster_bench.sh): uncoalesced, every client single costs one
#      worker admission token; coalesced, a merged window of N costs
#      one. Sustained 2xx QPS therefore measures exactly the win the
#      coalescer exists for. Hard gate: coalesced ok-QPS >= 1.5x
#      uncoalesced ok-QPS.
#
# Usage: sh scripts/gateway_bench.sh [DURATION] [RATE]
set -eu

GO=${GO:-go}
DURATION=${1:-8s}
RATE=${2:-500}
CODEC_BENCHTIME=${CODEC_BENCHTIME:-1s}
OUT=${OUT:-BENCH_gateway.json}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

# --- Codec microbenchmarks (zero-alloc gate) --------------------------
echo "gateway-bench: codec microbenchmarks (benchtime=$CODEC_BENCHTIME)..."
"$GO" test -run='^$' \
    -bench '^(BenchmarkEncodeDetectResponse|BenchmarkEncodeBatchResponse64|BenchmarkEncodeDetectRequest|BenchmarkEncodeBatchRequest64|BenchmarkDecodeBatchResponse64)$' \
    -benchmem -benchtime="$CODEC_BENCHTIME" ./internal/api/ >"$TMP/codec.txt"
"$GO" run ./cmd/benchjson \
    -baseline BENCH_baseline_gateway.txt \
    -out "$TMP/codec.json" \
    -require-zero-allocs BenchmarkEncodeDetectResponse,BenchmarkEncodeBatchResponse64,BenchmarkEncodeDetectRequest,BenchmarkEncodeBatchRequest64 \
    <"$TMP/codec.txt"

echo "gateway-bench: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idngateway" ./cmd/idngateway
"$GO" build -o "$TMP/idnload" ./cmd/idnload

wait_line() {
    _file=$1; _pat=$2; _pid=$3; _name=$4
    for i in $(seq 1 100); do
        if grep -q "$_pat" "$_file" 2>/dev/null; then return 0; fi
        kill -0 "$_pid" 2>/dev/null || { echo "gateway-bench: $_name died:"; cat "$_file"; exit 1; }
        sleep 0.1
    done
    echo "gateway-bench: $_name never became ready:"; cat "$_file"; exit 1
}

# ok_qps LOGFILE — extract the sustained 2xx rate from idnload output.
ok_qps() {
    sed -n 's/^ok: \([0-9][0-9]*\) req\/s (2xx)$/\1/p' "$1" | tail -1
}

# p99 LOGFILE — extract the p99 latency from idnload output.
p99() {
    sed -n 's/^latency: .*p99=\([^ ]*\).*/\1/p' "$1" | tail -1
}

# run_phase NAME GATEWAY_EXTRA_FLAGS — boot gateway + 2 capped workers,
# run the singles-only load, leave logs at $TMP/load_$NAME.log.
run_phase() {
    _phase=$1; shift
    "$TMP/idngateway" -listen 127.0.0.1:0 -min-ready 2 "$@" >"$TMP/gw_$_phase.log" 2>&1 &
    GW=$!
    PIDS="$GW"
    wait_line "$TMP/gw_$_phase.log" "^idngateway: listening on" "$GW" "idngateway"
    GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gw_$_phase.log")
    for i in 1 2; do
        "$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -rate "$RATE" -node "w$i" -join "$GWADDR" >"$TMP/${_phase}_w$i.log" 2>&1 &
        PIDS="$PIDS $!"
    done
    wait_line "$TMP/gw_$_phase.log" "^idngateway: serving 2 workers" "$GW" "idngateway quorum"

    "$TMP/idnload" -addr "$GWADDR" -duration 2s -singles-concurrency 32 >/dev/null 2>&1 || true
    "$TMP/idnload" -addr "$GWADDR" -duration "$DURATION" -singles-concurrency 64 >"$TMP/load_$_phase.log" 2>&1 || {
        echo "gateway-bench: $_phase load failed:"; cat "$TMP/load_$_phase.log"; exit 1; }
    cat "$TMP/load_$_phase.log"

    for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    PIDS=""
}

# --- Phase 1: proxied singles, coalescing off -------------------------
echo "gateway-bench: phase 1 — gateway + 2 workers, coalescing off (rate=$RATE/s each)..."
run_phase plain
PLAIN_QPS=$(ok_qps "$TMP/load_plain.log")
PLAIN_P99=$(p99 "$TMP/load_plain.log")
[ -n "$PLAIN_QPS" ] || { echo "gateway-bench: no ok-QPS line in uncoalesced output"; exit 1; }

# --- Phase 2: proxied singles, coalescing on --------------------------
echo "gateway-bench: phase 2 — same topology, -coalesce 500us..."
run_phase coal -coalesce 500us -coalesce-max 64
COAL_QPS=$(ok_qps "$TMP/load_coal.log")
COAL_P99=$(p99 "$TMP/load_coal.log")
[ -n "$COAL_QPS" ] || { echo "gateway-bench: no ok-QPS line in coalesced output"; exit 1; }
AMP=$(sed -n 's/^coalesce-amplification: \(.*\)$/\1/p' "$TMP/load_coal.log" | tail -1)

# --- Report -----------------------------------------------------------
SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $COAL_QPS / $PLAIN_QPS }")
CODEC_JSON=$(cat "$TMP/codec.json")
cat >"$OUT" <<EOF
{
  "benchmark": "gateway-coalescing",
  "methodology": "Per-node token-bucket rate cap (-rate) models fixed per-node capacity; idnload runs a singles-only pool (-singles-concurrency) and honors Retry-After, so sustained 2xx QPS converges on admitted capacity. Uncoalesced, one client single costs one worker admission token; with -coalesce 500us a merged window costs one token. codec = internal/api append-encoder/streaming-decoder microbenchmarks vs the recorded encoding/json baseline.",
  "config": {
    "ratePerNode": $RATE,
    "duration": "$DURATION",
    "workers": 2,
    "singlesConcurrency": 64,
    "coalesceWindow": "500us",
    "coalesceMax": 64
  },
  "proxiedSingles": { "okQPS": $PLAIN_QPS, "p99": "$PLAIN_P99" },
  "coalesced":      { "okQPS": $COAL_QPS, "p99": "$COAL_P99", "amplification": "$AMP" },
  "speedup": $SPEEDUP,
  "codec": $CODEC_JSON
}
EOF
echo "gateway-bench: plain=$PLAIN_QPS ok/s (p99=$PLAIN_P99), coalesced=$COAL_QPS ok/s (p99=$COAL_P99), speedup=${SPEEDUP}x -> $OUT"
[ -n "$AMP" ] && echo "gateway-bench: $AMP"

# Acceptance gate: coalescing must buy >= 1.5x sustained 2xx throughput.
awk "BEGIN { exit !($SPEEDUP >= 1.5) }" || {
    echo "gateway-bench: FAIL — speedup ${SPEEDUP}x < 1.5x"; exit 1; }
echo "gateway-bench: ok (>= 1.5x coalescing win verified)"
