#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the distribution tier: boots
# idngateway plus two idnserve workers (self-registered via -join), runs
# the full `idnload -smoke` request set THROUGH the gateway, SIGKILLs
# one worker, re-runs the smoke set against the survivors (the killed
# worker's key range must reassign with no client-visible errors), then
# SIGTERMs everything and asserts clean drains.
#
# Phase 2 repeats the drill with request coalescing enabled (-coalesce
# 500us): a singles-only idnload runs live THROUGH a worker SIGKILL and
# must finish with zero non-429 errors — merged windows failing over is
# the coalescer's hardest path. Run via `make cluster-smoke`.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "cluster-smoke: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idngateway" ./cmd/idngateway
"$GO" build -o "$TMP/idnload" ./cmd/idnload

# wait_line FILE PATTERN PID NAME — poll for a readiness line.
wait_line() {
    _file=$1; _pat=$2; _pid=$3; _name=$4
    for i in $(seq 1 100); do
        if grep -q "$_pat" "$_file" 2>/dev/null; then return 0; fi
        kill -0 "$_pid" 2>/dev/null || { echo "cluster-smoke: $_name died:"; cat "$_file"; exit 1; }
        sleep 0.1
    done
    echo "cluster-smoke: $_name never became ready:"; cat "$_file"; exit 1
}

# Gateway first (workers need its address to join). Fast heartbeats so
# the kill is detected quickly even without traffic.
"$TMP/idngateway" -listen 127.0.0.1:0 -heartbeat 200ms -min-ready 2 >"$TMP/gateway.log" 2>&1 &
GW=$!
PIDS="$GW"
wait_line "$TMP/gateway.log" "^idngateway: listening on" "$GW" "idngateway"
GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gateway.log")
echo "cluster-smoke: gateway up at $GWADDR"

# Two workers, ephemeral ports, self-registering.
"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -node w1 -join "$GWADDR" >"$TMP/w1.log" 2>&1 &
W1=$!
PIDS="$PIDS $W1"
"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -node w2 -join "$GWADDR" >"$TMP/w2.log" 2>&1 &
W2=$!
PIDS="$PIDS $W2"
wait_line "$TMP/gateway.log" "^idngateway: serving 2 workers" "$GW" "idngateway quorum"
echo "cluster-smoke: 2 workers joined"

# The exact same correctness set the single-node smoke runs, now through
# the routing tier: detection, caching, batch alignment, error taxonomy
# and merged metrics must all survive the extra hop.
"$TMP/idnload" -addr "$GWADDR" -smoke
echo "cluster-smoke: smoke via gateway ok"

# Kill a worker the hard way (no drain, no goodbye) and immediately
# re-run the full smoke set: proxy-failure feedback must reassign its
# key range to the survivor with zero client-visible errors.
kill -KILL "$W1"
PIDS="$GW $W2"
echo "cluster-smoke: killed worker w1 (SIGKILL)"
"$TMP/idnload" -addr "$GWADDR" -smoke
echo "cluster-smoke: smoke after worker kill ok"

# Best-effort membership view for the log (the Go failover test asserts
# the dead state programmatically; here we just show it when a fetcher
# is available).
VIEW=$(curl -s "http://$GWADDR/clusterz" 2>/dev/null || wget -q -O - "http://$GWADDR/clusterz" 2>/dev/null || true)
[ -n "$VIEW" ] && echo "cluster-smoke: clusterz after kill: $VIEW"

# Graceful teardown: SIGTERM worker then gateway; both must drain clean.
kill -TERM "$W2"
STATUS=0; wait "$W2" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "cluster-smoke: w2 exited $STATUS:"; cat "$TMP/w2.log"; exit 1; }
grep -q "drained cleanly" "$TMP/w2.log" || { echo "cluster-smoke: w2 no clean-drain marker:"; cat "$TMP/w2.log"; exit 1; }

kill -TERM "$GW"
STATUS=0; wait "$GW" || STATUS=$?
PIDS=""
[ "$STATUS" -eq 0 ] || { echo "cluster-smoke: gateway exited $STATUS:"; cat "$TMP/gateway.log"; exit 1; }
grep -q "drained cleanly" "$TMP/gateway.log" || { echo "cluster-smoke: gateway no clean-drain marker:"; cat "$TMP/gateway.log"; exit 1; }

echo "cluster-smoke: phase 1 ok (gateway + 2 workers, worker kill, clean drains)"

# --- Phase 2: coalescing gateway, worker SIGKILL under live load ------
"$TMP/idngateway" -listen 127.0.0.1:0 -heartbeat 200ms -min-ready 2 -coalesce 500us >"$TMP/gateway2.log" 2>&1 &
GW=$!
PIDS="$GW"
wait_line "$TMP/gateway2.log" "^idngateway: listening on" "$GW" "idngateway(coalescing)"
GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gateway2.log")
echo "cluster-smoke: coalescing gateway up at $GWADDR"

"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -node w3 -join "$GWADDR" >"$TMP/w3.log" 2>&1 &
W3=$!
PIDS="$PIDS $W3"
"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -node w4 -join "$GWADDR" >"$TMP/w4.log" 2>&1 &
W4=$!
PIDS="$PIDS $W4"
wait_line "$TMP/gateway2.log" "^idngateway: serving 2 workers" "$GW" "idngateway(coalescing) quorum"

# The smoke correctness set must be invisible to coalescing: same
# verdicts, same caching, same error taxonomy, byte-identical bodies.
"$TMP/idnload" -addr "$GWADDR" -smoke
echo "cluster-smoke: smoke via coalescing gateway ok"

# Singles-only live load (the coalescing-friendly shape), with a worker
# SIGKILLed mid-stream: merged windows in flight to the dead worker must
# retry or fail over without a single client-visible non-429 error.
"$TMP/idnload" -addr "$GWADDR" -duration 6s -singles-concurrency 32 >"$TMP/load_coal.log" 2>&1 &
LOAD=$!
sleep 2
kill -KILL "$W3"
PIDS="$GW $W4"
echo "cluster-smoke: killed worker w3 (SIGKILL) under coalesced load"
STATUS=0; wait "$LOAD" || STATUS=$?
cat "$TMP/load_coal.log"
[ "$STATUS" -eq 0 ] || { echo "cluster-smoke: coalesced load exited $STATUS"; exit 1; }
grep -q "error-rate: 0.00%" "$TMP/load_coal.log" || {
    echo "cluster-smoke: non-429 errors during coalesced failover"; exit 1; }
grep -q "^coalesce-amplification: " "$TMP/load_coal.log" || {
    echo "cluster-smoke: coalescing never engaged (no amplification line)"; exit 1; }

kill -TERM "$W4"
STATUS=0; wait "$W4" || STATUS=$?
[ "$STATUS" -eq 0 ] || { echo "cluster-smoke: w4 exited $STATUS:"; cat "$TMP/w4.log"; exit 1; }
grep -q "drained cleanly" "$TMP/w4.log" || { echo "cluster-smoke: w4 no clean-drain marker:"; cat "$TMP/w4.log"; exit 1; }

kill -TERM "$GW"
STATUS=0; wait "$GW" || STATUS=$?
PIDS=""
[ "$STATUS" -eq 0 ] || { echo "cluster-smoke: coalescing gateway exited $STATUS:"; cat "$TMP/gateway2.log"; exit 1; }
grep -q "drained cleanly" "$TMP/gateway2.log" || { echo "cluster-smoke: coalescing gateway no clean-drain marker:"; cat "$TMP/gateway2.log"; exit 1; }

echo "cluster-smoke: ok (plain + coalescing phases, worker kills, clean drains)"
