#!/bin/sh
# cluster_bench.sh — the horizontal-scaling benchmark behind
# BENCH_cluster.json: measures one rate-capped worker's sustained 2xx
# throughput, then a gateway fronting three identically capped workers,
# and records the speedup.
#
# Methodology (single-machine honesty): on one box, N uncapped workers
# share the same cores, so "N× QPS" would only measure scheduler noise.
# Instead every worker gets the same -rate cap (a token bucket modeling
# fixed per-node capacity — the SLA-sized share of hardware a real
# deployment provisions per node). The load generator honors Retry-After
# on 429s, so its sustained 2xx rate converges on aggregate capacity:
# one capped worker sustains ~RATE, three behind the gateway sustain
# ~3×RATE. That the cluster actually delivers the aggregate — routing,
# scatter/gather and membership overhead included — is precisely the
# property worth measuring; CPU-bound single-node ceilings are covered
# by serve_bench.sh.
#
# Usage: sh scripts/cluster_bench.sh [DURATION] [RATE]
set -eu

GO=${GO:-go}
DURATION=${1:-8s}
RATE=${2:-500}
OUT=${OUT:-BENCH_cluster.json}
TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "cluster-bench: building binaries..."
"$GO" build -o "$TMP/idnserve" ./cmd/idnserve
"$GO" build -o "$TMP/idngateway" ./cmd/idngateway
"$GO" build -o "$TMP/idnload" ./cmd/idnload

wait_line() {
    _file=$1; _pat=$2; _pid=$3; _name=$4
    for i in $(seq 1 100); do
        if grep -q "$_pat" "$_file" 2>/dev/null; then return 0; fi
        kill -0 "$_pid" 2>/dev/null || { echo "cluster-bench: $_name died:"; cat "$_file"; exit 1; }
        sleep 0.1
    done
    echo "cluster-bench: $_name never became ready:"; cat "$_file"; exit 1
}

# ok_qps LOGFILE — extract the sustained 2xx rate from idnload output.
ok_qps() {
    sed -n 's/^ok: \([0-9][0-9]*\) req\/s (2xx)$/\1/p' "$1" | tail -1
}

# --- Phase 1: single rate-capped worker -------------------------------
echo "cluster-bench: phase 1 — single worker (rate=$RATE/s)..."
"$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -rate "$RATE" >"$TMP/single.log" 2>&1 &
SRV=$!
PIDS="$SRV"
wait_line "$TMP/single.log" "^idnserve: listening on" "$SRV" "idnserve"
ADDR=$(sed -n 's/^idnserve: listening on \([^ ]*\).*/\1/p' "$TMP/single.log")

"$TMP/idnload" -addr "$ADDR" -duration 2s -concurrency 16 >/dev/null 2>&1 || true
"$TMP/idnload" -addr "$ADDR" -duration "$DURATION" -concurrency 32 >"$TMP/load_single.log" 2>&1 || {
    echo "cluster-bench: single-node load failed:"; cat "$TMP/load_single.log"; exit 1; }
cat "$TMP/load_single.log"
SINGLE_QPS=$(ok_qps "$TMP/load_single.log")
[ -n "$SINGLE_QPS" ] || { echo "cluster-bench: no ok-QPS line in single-node output"; exit 1; }

kill -TERM "$SRV"; wait "$SRV" || true
PIDS=""

# --- Phase 2: gateway + 3 rate-capped workers -------------------------
echo "cluster-bench: phase 2 — gateway + 3 workers (rate=$RATE/s each)..."
"$TMP/idngateway" -listen 127.0.0.1:0 -min-ready 3 >"$TMP/gateway.log" 2>&1 &
GW=$!
PIDS="$GW"
wait_line "$TMP/gateway.log" "^idngateway: listening on" "$GW" "idngateway"
GWADDR=$(sed -n 's/^idngateway: listening on \([^ ]*\).*/\1/p' "$TMP/gateway.log")

for i in 1 2 3; do
    "$TMP/idnserve" -listen 127.0.0.1:0 -brands 1000 -rate "$RATE" -node "w$i" -join "$GWADDR" >"$TMP/w$i.log" 2>&1 &
    PIDS="$PIDS $!"
done
wait_line "$TMP/gateway.log" "^idngateway: serving 3 workers" "$GW" "idngateway quorum"

"$TMP/idnload" -addr "$GWADDR" -duration 2s -concurrency 32 >/dev/null 2>&1 || true
"$TMP/idnload" -addr "$GWADDR" -duration "$DURATION" -concurrency 64 >"$TMP/load_cluster.log" 2>&1 || {
    echo "cluster-bench: cluster load failed:"; cat "$TMP/load_cluster.log"; exit 1; }
cat "$TMP/load_cluster.log"
CLUSTER_QPS=$(ok_qps "$TMP/load_cluster.log")
[ -n "$CLUSTER_QPS" ] || { echo "cluster-bench: no ok-QPS line in cluster output"; exit 1; }

for p in $PIDS; do kill -TERM "$p" 2>/dev/null || true; done
for p in $PIDS; do wait "$p" 2>/dev/null || true; done
PIDS=""

# --- Report -----------------------------------------------------------
SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $CLUSTER_QPS / $SINGLE_QPS }")
cat >"$OUT" <<EOF
{
  "benchmark": "cluster-scaling",
  "methodology": "Per-node token-bucket rate cap (-rate) models fixed per-node capacity on a single machine; idnload honors Retry-After on 429, so sustained 2xx QPS converges on aggregate capacity. Phase 1: one capped idnserve, direct. Phase 2: idngateway + 3 capped idnserve workers (rendezvous-partitioned verdict cache).",
  "config": {
    "ratePerNode": $RATE,
    "duration": "$DURATION",
    "brands": 1000,
    "nodes": 3
  },
  "singleNode": { "okQPS": $SINGLE_QPS },
  "cluster":    { "okQPS": $CLUSTER_QPS, "nodes": 3 },
  "speedup": $SPEEDUP
}
EOF
echo "cluster-bench: single=$SINGLE_QPS ok/s, cluster(3)=$CLUSTER_QPS ok/s, speedup=${SPEEDUP}x -> $OUT"

# Acceptance gate: 3 workers must sustain at least 2x one worker.
awk "BEGIN { exit !($SPEEDUP >= 2.0) }" || {
    echo "cluster-bench: FAIL — speedup ${SPEEDUP}x < 2.0x"; exit 1; }
echo "cluster-bench: ok (>= 2x scaling verified)"
