package idnlab

import (
	"strings"
	"testing"
)

func TestFacadeIDNARoundTrip(t *testing.T) {
	ace, err := ToASCII("波色.com")
	if err != nil {
		t.Fatal(err)
	}
	if ace != "xn--0wwy37b.com" {
		t.Errorf("ToASCII = %q", ace)
	}
	uni, err := ToUnicode(ace)
	if err != nil {
		t.Fatal(err)
	}
	if uni != "波色.com" {
		t.Errorf("ToUnicode = %q", uni)
	}
	if !IsIDN(ace) || IsIDN("example.com") {
		t.Error("IsIDN wrong")
	}
}

func TestFacadePunycode(t *testing.T) {
	enc, err := EncodeLabel("中国")
	if err != nil || enc != "fiqs8s" {
		t.Errorf("EncodeLabel = %q, %v", enc, err)
	}
	dec, err := DecodeLabel("fiqs8s")
	if err != nil || dec != "中国" {
		t.Errorf("DecodeLabel = %q, %v", dec, err)
	}
}

func TestFacadeDetectors(t *testing.T) {
	det := NewHomographDetector(1000)
	m, ok := det.DetectOne("xn--pple-43d.com")
	if !ok || m.Brand != "apple.com" {
		t.Errorf("homograph: %v %v", m, ok)
	}
	sem := NewSemanticDetector(1000)
	sm, ok := sem.DetectOne("apple邮箱.com")
	if !ok || sm.Brand != "apple.com" || sm.Keyword != "邮箱" {
		t.Errorf("semantic: %v %v", sm, ok)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	ds, err := NewDataset(3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	study := NewStudy(ds)
	var sb strings.Builder
	if err := study.Run(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE XIII") {
		t.Error("study output incomplete")
	}
}

func TestFacadeBrowserSurvey(t *testing.T) {
	profiles := BrowserSurvey()
	if len(profiles) != 27 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	vulnerable := 0
	for _, p := range profiles {
		if EvaluateBrowser(p) == "Vulnerable" {
			vulnerable++
		}
	}
	if vulnerable != 1 {
		t.Errorf("vulnerable browsers = %d, want 1 (Sogou PC)", vulnerable)
	}
}

func TestFacadeGenerateAssemble(t *testing.T) {
	reg := Generate(GenConfig{Seed: 9, Scale: 2000})
	if len(reg.Domains) == 0 {
		t.Fatal("empty registry")
	}
	ds, err := Assemble(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.IDNs) == 0 {
		t.Fatal("no IDNs assembled")
	}
}

func TestFacadeDetectorOptions(t *testing.T) {
	det := NewHomographDetector(100, WithThreshold(0.999))
	if det.Threshold() != 0.999 {
		t.Errorf("Threshold = %v", det.Threshold())
	}
	bf := NewHomographDetector(100, WithoutPrefilter()) // apple.com is rank 55
	if m, ok := bf.DetectOne("xn--pple-43d.com"); !ok || m.Brand != "apple.com" {
		t.Errorf("brute force: %v %v", m, ok)
	}
}
